"""Timestamp-based set-associative cache model with MSHRs.

The timing simulator asks ``access(addr, cycle, ...)`` and receives the
cycle at which the data is available.  Lines carry a ``ready_at`` stamp so
an in-flight fill (demand or prefetch) services later requests at its
arrival time rather than as an instant hit; a bounded MSHR file limits the
number of outstanding misses, delaying further misses until a slot frees
up — the behaviour responsible for the memory-level-parallelism limits the
paper's Table 2 parameters (56/64 MSHRs) imply.
"""


class _Line:
    __slots__ = ("tag", "dirty", "ready_at")

    def __init__(self, tag, ready_at):
        self.tag = tag
        self.dirty = False
        self.ready_at = ready_at


class MainMemory:
    """Fixed-latency DRAM endpoint."""

    def __init__(self, latency=110):
        self.latency = latency
        self.stat_accesses = 0

    def access(self, _addr, cycle, is_write=False, pc=None, is_prefetch=False):
        self.stat_accesses += 1
        return cycle + self.latency

    def invalidate_all(self):  # pragma: no cover - interface symmetry
        pass


class Cache:
    """One cache level.

    *latency* is the load-to-use latency in cycles (Table 2 numbers).  The
    next level is *parent* (another Cache or MainMemory).  An optional
    *prefetcher* is trained on demand accesses and may call
    :meth:`prefetch_line`.
    """

    def __init__(self, name, size_bytes, ways, line_size=64, latency=4,
                 mshrs=16, parent=None, prefetcher=None):
        if size_bytes % (ways * line_size):
            raise ValueError(f"{name}: size not divisible into {ways} ways")
        self.name = name
        self.sets = size_bytes // (ways * line_size)
        self.ways = ways
        self.line_size = line_size
        self.line_bits = line_size.bit_length() - 1
        self.latency = latency
        self.mshr_limit = mshrs
        self.parent = parent
        self.prefetcher = prefetcher
        self._sets = [[] for _ in range(self.sets)]  # LRU order, front = MRU
        self._mshrs = {}                              # line_addr -> fill cycle
        # Statistics.
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_prefetch_issued = 0
        self.stat_prefetch_hits = 0   # demand hits on prefetched lines
        self.stat_writebacks = 0
        self.stat_mshr_stalls = 0

    # -- internals --------------------------------------------------------------
    def _locate(self, addr):
        line_addr = addr >> self.line_bits
        return self._sets[line_addr % self.sets], line_addr

    def _purge_mshrs(self, cycle):
        if len(self._mshrs) > self.mshr_limit // 2:
            done = [line for line, fill in self._mshrs.items() if fill <= cycle]
            for line in done:
                del self._mshrs[line]

    def _mshr_delay(self, cycle):
        """Cycle at which a new miss can be accepted."""
        self._purge_mshrs(cycle)
        live = [fill for fill in self._mshrs.values() if fill > cycle]
        if len(live) < self.mshr_limit:
            return cycle
        self.stat_mshr_stalls += 1
        return min(live)

    def _install(self, ways, tag, ready_at):
        line = _Line(tag, ready_at)
        ways.insert(0, line)
        if len(ways) > self.ways:
            victim = ways.pop()
            if victim.dirty:
                self.stat_writebacks += 1
        return line

    # -- public API ----------------------------------------------------------------
    def access(self, addr, cycle, is_write=False, pc=None, is_prefetch=False):
        """Access *addr* at *cycle*; returns the data-ready cycle."""
        line_addr = addr >> self.line_bits       # _locate, inlined (hot path)
        ways = self._sets[line_addr % self.sets]
        for position, line in enumerate(ways):
            if line.tag == line_addr:
                if position:
                    ways.insert(0, ways.pop(position))
                if is_write:
                    line.dirty = True
                if not is_prefetch:
                    self.stat_hits += 1
                    if line.ready_at > cycle:
                        self.stat_prefetch_hits += 1
                    prefetcher = self.prefetcher
                    if prefetcher is not None:
                        prefetcher.observe(self, pc, addr, cycle, True)
                ready = line.ready_at + 1
                cycle += self.latency
                return cycle if cycle >= ready else ready
        # Miss.
        if not is_prefetch:
            self.stat_misses += 1
        start = self._mshr_delay(cycle)
        pending = self._mshrs.get(line_addr)
        if pending is not None and pending > cycle:
            fill = pending  # coalesce with the in-flight fill
        else:
            fill = self.parent.access(addr, start + self.latency,
                                      is_write=False, pc=pc,
                                      is_prefetch=is_prefetch)
            self._mshrs[line_addr] = fill
        line = self._install(ways, line_addr, fill)
        if is_write:
            line.dirty = True
        if not is_prefetch:
            self._train_prefetcher(pc, addr, cycle, hit=False)
        return max(fill, cycle + self.latency)

    def prefetch_line(self, addr, cycle):
        """Bring a line in without charging a demand request."""
        ways, line_addr = self._locate(addr)
        for line in ways:
            if line.tag == line_addr:
                return  # already present or in flight
        if line_addr in self._mshrs and self._mshrs[line_addr] > cycle:
            return
        if self._mshr_delay(cycle) > cycle:
            return  # no MSHR available: drop the prefetch
        self.stat_prefetch_issued += 1
        fill = self.parent.access(addr, cycle + self.latency,
                                  is_write=False, pc=None, is_prefetch=True)
        self._mshrs[line_addr] = fill
        self._install(ways, line_addr, fill)

    def _train_prefetcher(self, pc, addr, cycle, hit):
        if self.prefetcher is not None:
            self.prefetcher.observe(self, pc, addr, cycle, hit)

    # -- inspection -------------------------------------------------------------------
    @property
    def stat_accesses(self):
        return self.stat_hits + self.stat_misses

    @property
    def miss_rate(self):
        total = self.stat_accesses
        return self.stat_misses / total if total else 0.0

    def invalidate_all(self):
        """Drop all lines (used between benchmark repetitions)."""
        self._sets = [[] for _ in range(self.sets)]
        self._mshrs.clear()
