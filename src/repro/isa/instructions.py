"""Architectural instruction representation.

Instructions are kept symbolic (no binary encoding): an :class:`Instruction`
carries its opcode, destination/source :class:`~repro.isa.registers.Operand`
lists, an optional immediate, an optional condition code and an optional
:class:`MemAccess` describing the addressing mode.  The assembler builds
these; the µop expander and the functional emulator consume them.
"""

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import (
    BRANCHES,
    CONDITIONAL_BRANCHES,
    FLAG_READERS,
    FLAG_WRITERS,
    INDIRECT_BRANCHES,
    LOADS,
    MEM_OPS,
    Op,
    STORES,
)
from repro.isa.registers import Operand


class AddrMode(enum.Enum):
    """Memory addressing mode."""

    OFFSET = "offset"          # [base, #imm] or [base, reg]
    PRE_INDEX = "pre_index"    # [base, #imm]!  (base updated before access)
    POST_INDEX = "post_index"  # [base], #imm   (base updated after access)


@dataclass(frozen=True)
class MemAccess:
    """Addressing-mode description for a load/store."""

    base: Operand
    mode: AddrMode = AddrMode.OFFSET
    offset_imm: int = 0
    offset_reg: Optional[Operand] = None
    offset_shift: int = 0  # left shift applied to the register offset

    @property
    def has_writeback(self):
        """True when the base register is updated by the access."""
        return self.mode is not AddrMode.OFFSET


@dataclass(frozen=True)
class Instruction:
    """One architectural instruction."""

    op: Op
    dsts: Tuple[Operand, ...] = ()
    srcs: Tuple[Operand, ...] = ()
    imm: Optional[int] = None
    imm2: Optional[int] = None          # second immediate (ubfm imms, movk shift, tbz bit)
    cond: Optional["Cond"] = None       # noqa: F821 - condition code
    mem: Optional[MemAccess] = None
    target: Optional[str] = None        # branch target label
    text: str = field(default="", compare=False)

    # -- classification helpers -------------------------------------------------
    @property
    def is_branch(self):
        return self.op in BRANCHES

    @property
    def is_conditional_branch(self):
        return self.op in CONDITIONAL_BRANCHES

    @property
    def is_indirect_branch(self):
        return self.op in INDIRECT_BRANCHES

    @property
    def is_load(self):
        return self.op in LOADS

    @property
    def is_store(self):
        return self.op in STORES

    @property
    def is_mem(self):
        return self.op in MEM_OPS

    @property
    def writes_flags(self):
        return self.op in FLAG_WRITERS

    @property
    def reads_flags(self):
        return self.op in FLAG_READERS

    @property
    def width(self):
        """Operating width, taken from the first register operand."""
        if self.dsts:
            return self.dsts[0].width
        if self.srcs:
            return self.srcs[0].width
        return 64

    def __repr__(self):
        return self.text or f"<{self.op.value}>"
