"""Opcode enumeration and execution-class metadata.

``Op`` names every mnemonic the mini-ISA supports.  ``ExecClass`` maps each
micro-op onto one of the Table 2 functional-unit classes, which drives issue
port selection and latency in the timing model.
"""

import enum


class ExecClass(enum.Enum):
    """Functional-unit class of a micro-op (Table 2 of the paper)."""

    INT_ALU = "int_alu"      # simple ALU, 1 cycle
    INT_MUL = "int_mul"      # integer multiply, 3 cycles
    INT_DIV = "int_div"      # integer divide, 20 cycles, unpipelined
    FP_ALU = "fp_alu"        # simple FP/SIMD, 3 cycles
    FP_MUL = "fp_mul"        # FP multiply, 4 cycles (5 for MAC)
    FP_DIV = "fp_div"        # FP divide, 12 cycles, unpipelined
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"        # executes on a simple ALU port
    NOP = "nop"


class Op(enum.Enum):
    """Architectural mnemonics of the mini-ISA."""

    # Integer arithmetic / logic.
    ADD = "add"
    ADDS = "adds"
    SUB = "sub"
    SUBS = "subs"
    AND = "and"
    ANDS = "ands"
    ORR = "orr"
    EOR = "eor"
    BIC = "bic"
    LSL = "lsl"
    LSR = "lsr"
    ASR = "asr"
    MUL = "mul"
    MADD = "madd"
    SDIV = "sdiv"
    UDIV = "udiv"
    RBIT = "rbit"
    CLZ = "clz"
    UBFM = "ubfm"
    SBFM = "sbfm"
    # Moves.
    MOV = "mov"        # register move (alias of orr dst, xzr, src)
    MOVZ = "movz"      # move wide immediate (zeroing)
    MOVN = "movn"      # move wide immediate (inverted)
    MOVK = "movk"      # move wide immediate (keep)
    # Conditional data processing.
    CSEL = "csel"
    CSINC = "csinc"
    CSNEG = "csneg"
    CSET = "cset"      # alias of csinc dst, xzr, xzr, !cond
    CMP = "cmp"        # alias of subs xzr, ...
    CMN = "cmn"        # alias of adds xzr, ...
    TST = "tst"        # alias of ands xzr, ...
    # Branches.
    B = "b"
    B_COND = "b.cond"
    CBZ = "cbz"
    CBNZ = "cbnz"
    TBZ = "tbz"
    TBNZ = "tbnz"
    BL = "bl"
    BLR = "blr"
    BR = "br"
    RET = "ret"
    # Memory.
    LDR = "ldr"
    LDRB = "ldrb"
    LDRH = "ldrh"
    LDRSW = "ldrsw"
    STR = "str"
    STRB = "strb"
    STRH = "strh"
    LDP = "ldp"
    STP = "stp"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMADD = "fmadd"
    FMOV = "fmov"
    FCMP = "fcmp"
    FCVTZS = "fcvtzs"  # FP -> INT conversion (writes a GPR)
    SCVTF = "scvtf"    # INT -> FP conversion
    # Misc.
    NOP = "nop"
    HLT = "hlt"        # stop the emulator


# Ops whose destination is a general purpose register when executed.
# Only these are Value-Prediction eligible per the paper ("only instructions
# that produce one (or more) general purpose register").
GPR_PRODUCERS = frozenset({
    Op.ADD, Op.ADDS, Op.SUB, Op.SUBS, Op.AND, Op.ANDS, Op.ORR, Op.EOR,
    Op.BIC, Op.LSL, Op.LSR, Op.ASR, Op.MUL, Op.MADD, Op.SDIV, Op.UDIV,
    Op.RBIT, Op.CLZ, Op.UBFM, Op.SBFM, Op.MOV, Op.MOVZ, Op.MOVN, Op.MOVK,
    Op.CSEL, Op.CSINC, Op.CSNEG, Op.CSET,
    Op.LDR, Op.LDRB, Op.LDRH, Op.LDRSW, Op.LDP, Op.FCVTZS,
})

# Ops that write the NZCV flags.
FLAG_WRITERS = frozenset({Op.ADDS, Op.SUBS, Op.ANDS, Op.CMP, Op.CMN, Op.TST, Op.FCMP})

# Ops that read the NZCV flags.
FLAG_READERS = frozenset({Op.B_COND, Op.CSEL, Op.CSINC, Op.CSNEG, Op.CSET})

BRANCHES = frozenset({
    Op.B, Op.B_COND, Op.CBZ, Op.CBNZ, Op.TBZ, Op.TBNZ, Op.BL, Op.BLR,
    Op.BR, Op.RET,
})

CONDITIONAL_BRANCHES = frozenset({Op.B_COND, Op.CBZ, Op.CBNZ, Op.TBZ, Op.TBNZ})
INDIRECT_BRANCHES = frozenset({Op.BLR, Op.BR, Op.RET})
CALLS = frozenset({Op.BL, Op.BLR})

LOADS = frozenset({Op.LDR, Op.LDRB, Op.LDRH, Op.LDRSW, Op.LDP})
STORES = frozenset({Op.STR, Op.STRB, Op.STRH, Op.STP})
MEM_OPS = LOADS | STORES

FP_OPS = frozenset({
    Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMADD, Op.FMOV, Op.FCMP,
    Op.FCVTZS, Op.SCVTF,
})


_EXEC_CLASS = {
    Op.MUL: ExecClass.INT_MUL,
    Op.MADD: ExecClass.INT_MUL,
    Op.SDIV: ExecClass.INT_DIV,
    Op.UDIV: ExecClass.INT_DIV,
    Op.FADD: ExecClass.FP_ALU,
    Op.FSUB: ExecClass.FP_ALU,
    Op.FMOV: ExecClass.FP_ALU,
    Op.FCMP: ExecClass.FP_ALU,
    Op.FCVTZS: ExecClass.FP_ALU,
    Op.SCVTF: ExecClass.FP_ALU,
    Op.FMUL: ExecClass.FP_MUL,
    Op.FMADD: ExecClass.FP_MUL,
    Op.FDIV: ExecClass.FP_DIV,
    Op.NOP: ExecClass.NOP,
    Op.HLT: ExecClass.NOP,
}


def exec_class(op):
    """Functional-unit class for an opcode (memory/branch checked first)."""
    if op in LOADS:
        return ExecClass.LOAD
    if op in STORES:
        return ExecClass.STORE
    if op in BRANCHES:
        return ExecClass.BRANCH
    return _EXEC_CLASS.get(op, ExecClass.INT_ALU)


# Memory access size in bytes for each memory op (per element for LDP/STP,
# which is width-dependent and resolved by the expander).
def access_size(op, width):
    """Bytes touched per element by a memory opcode at a given width."""
    if op in (Op.LDRB, Op.STRB):
        return 1
    if op in (Op.LDRH, Op.STRH):
        return 2
    if op is Op.LDRSW:
        return 4
    return 8 if width == 64 else 4
