"""ARMv8-flavoured mini ISA: registers, instructions, assembler, semantics.

This package is the architectural substrate of the reproduction.  It defines
a symbolic (non-binary-encoded) AArch64-like instruction set that covers
every instruction class the paper's Table 1 idiom list and evaluation rely
on: flag-setting arithmetic (``adds``/``subs``/``ands``), conditional
selects (``csel``/``csinc``/``csneg``), compare-and-branch
(``cbz``/``tbz``), shifts, bitfield moves, pre/post-indexed and pair
loads/stores (which expand to multiple micro-ops), and a small FP subset.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.condition import Cond, condition_holds
from repro.isa.instructions import AddrMode, Instruction, MemAccess, Operand
from repro.isa.opcodes import ExecClass, Op
from repro.isa.program import Program
from repro.isa.registers import FLAGS, FP_BASE, NZCV, Reg, SP, XZR

__all__ = [
    "AddrMode",
    "AssemblyError",
    "Cond",
    "ExecClass",
    "FLAGS",
    "FP_BASE",
    "Instruction",
    "MemAccess",
    "NZCV",
    "Op",
    "Operand",
    "Program",
    "Reg",
    "SP",
    "XZR",
    "assemble",
    "condition_holds",
]
