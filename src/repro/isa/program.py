"""Assembled program container."""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instructions import Instruction

CODE_BASE = 0x0000_4000
DATA_BASE = 0x0010_0000
INST_BYTES = 4


@dataclass
class Program:
    """An assembled program: code, labels, and an initial data image."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)          # label -> inst index
    data_labels: Dict[str, int] = field(default_factory=dict)     # label -> address
    data_image: List[Tuple[int, bytes]] = field(default_factory=list)
    entry: int = 0

    def pc_of(self, index):
        """Byte address of the instruction at *index*."""
        return CODE_BASE + index * INST_BYTES

    def index_of(self, pc):
        """Instruction index for a code byte address."""
        return (pc - CODE_BASE) // INST_BYTES

    @property
    def entry_pc(self):
        return self.pc_of(self.entry)

    def resolve(self, label):
        """Address of a code or data label."""
        if label in self.labels:
            return self.pc_of(self.labels[label])
        if label in self.data_labels:
            return self.data_labels[label]
        raise KeyError(f"unknown label {label!r}")

    def __len__(self):
        return len(self.instructions)
