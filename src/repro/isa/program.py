"""Assembled program container."""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instructions import Instruction

CODE_BASE = 0x0000_4000
DATA_BASE = 0x0010_0000
INST_BYTES = 4


@dataclass
class Program:
    """An assembled program: code, labels, and an initial data image."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)          # label -> inst index
    data_labels: Dict[str, int] = field(default_factory=dict)     # label -> address
    data_image: List[Tuple[int, bytes]] = field(default_factory=list)
    entry: int = 0

    def pc_of(self, index):
        """Byte address of the instruction at *index*."""
        return CODE_BASE + index * INST_BYTES

    def index_of(self, pc):
        """Instruction index for a code byte address.

        Raises :class:`ValueError` for addresses outside the code section
        or not 4-byte aligned — both indicate a control-flow bug (a wild
        branch target or a corrupted PC), never a valid fetch.
        """
        offset = pc - CODE_BASE
        if offset % INST_BYTES:
            raise ValueError(f"misaligned code address: {pc:#x}")
        index = offset // INST_BYTES
        if not 0 <= index < len(self.instructions):
            raise ValueError(f"code address out of range: {pc:#x}")
        return index

    @property
    def entry_pc(self):
        return self.pc_of(self.entry)

    def validate(self):
        """Structural invariants every assembled program must satisfy.

        The assembler calls this on every program it emits; the static
        verifier reports a violation as finding V001.  Raises ValueError.
        """
        n = len(self.instructions)
        if not n:
            raise ValueError("program has no instructions")
        if not 0 <= self.entry < n:
            raise ValueError(f"entry index {self.entry} outside code "
                             f"[0, {n})")
        for label, index in self.labels.items():
            # index == n is a trailing end-of-code label; branching to it
            # is the verifier's fall-off-the-end finding, not a structural
            # error.
            if not 0 <= index <= n:
                raise ValueError(f"code label {label!r} points at "
                                 f"instruction {index}, outside [0, {n}]")
        code_end = CODE_BASE + n * INST_BYTES
        for label, address in self.data_labels.items():
            if CODE_BASE <= address < code_end:
                raise ValueError(f"data label {label!r} at {address:#x} "
                                 "overlaps the code section")
        for address, payload in self.data_image:
            if address < code_end and address + len(payload) > CODE_BASE:
                raise ValueError(f"data image chunk at {address:#x} "
                                 "overlaps the code section")

    def resolve(self, label):
        """Address of a code or data label."""
        if label in self.labels:
            return self.pc_of(self.labels[label])
        if label in self.data_labels:
            return self.data_labels[label]
        raise KeyError(f"unknown label {label!r}")

    def __len__(self):
        return len(self.instructions)
