"""ARMv8 condition codes and their evaluation against NZCV flags."""

import enum

from repro.isa.bits import FLAG_C, FLAG_N, FLAG_V, FLAG_Z


class Cond(enum.Enum):
    """ARMv8 condition mnemonics."""

    EQ = "eq"
    NE = "ne"
    CS = "cs"
    CC = "cc"
    MI = "mi"
    PL = "pl"
    VS = "vs"
    VC = "vc"
    HI = "hi"
    LS = "ls"
    GE = "ge"
    LT = "lt"
    GT = "gt"
    LE = "le"
    AL = "al"


_ALIASES = {"hs": Cond.CS, "lo": Cond.CC}


def parse_cond(token):
    """Parse a condition mnemonic (accepting the hs/lo aliases)."""
    token = token.lower()
    if token in _ALIASES:
        return _ALIASES[token]
    return Cond(token)


def invert(cond):
    """The logical negation of a condition code (AL has no inverse here)."""
    pairs = {
        Cond.EQ: Cond.NE, Cond.NE: Cond.EQ,
        Cond.CS: Cond.CC, Cond.CC: Cond.CS,
        Cond.MI: Cond.PL, Cond.PL: Cond.MI,
        Cond.VS: Cond.VC, Cond.VC: Cond.VS,
        Cond.HI: Cond.LS, Cond.LS: Cond.HI,
        Cond.GE: Cond.LT, Cond.LT: Cond.GE,
        Cond.GT: Cond.LE, Cond.LE: Cond.GT,
    }
    if cond not in pairs:
        raise ValueError(f"cannot invert {cond}")
    return pairs[cond]


def condition_holds(cond, flags):
    """Evaluate *cond* against a 4-bit NZCV *flags* value."""
    n = bool(flags & FLAG_N)
    z = bool(flags & FLAG_Z)
    c = bool(flags & FLAG_C)
    v = bool(flags & FLAG_V)
    if cond is Cond.EQ:
        return z
    if cond is Cond.NE:
        return not z
    if cond is Cond.CS:
        return c
    if cond is Cond.CC:
        return not c
    if cond is Cond.MI:
        return n
    if cond is Cond.PL:
        return not n
    if cond is Cond.VS:
        return v
    if cond is Cond.VC:
        return not v
    if cond is Cond.HI:
        return c and not z
    if cond is Cond.LS:
        return not c or z
    if cond is Cond.GE:
        return n == v
    if cond is Cond.LT:
        return n != v
    if cond is Cond.GT:
        return not z and n == v
    if cond is Cond.LE:
        return z or n != v
    return True  # AL
