"""Decode-time micro-op expansion.

High-performance AArch64 pipelines crack a few architectural instructions
into multiple micro-ops.  The paper's Fig. 2 reports the resulting
"expansion ratio" (µops per retired architectural instruction, ~1.0-1.15 on
SPEC2k17) and notes that pre/post-increment addressing is the notable gem5
example.  We crack exactly the cases the paper calls out:

* pre-indexed load/store   -> writeback add + simple load/store
* post-indexed load/store  -> simple load/store + writeback add
* ldp/stp                  -> two loads/stores (+ writeback add if indexed)

Everything else flows as a single µop.  Expanded µops are themselves
:class:`~repro.isa.instructions.Instruction` records with plain ``OFFSET``
addressing, so the functional and timing models need only one semantics
implementation.
"""

from repro.isa.instructions import AddrMode, Instruction, MemAccess
from repro.isa.opcodes import Op, access_size


def _writeback_add(mem, text):
    """The µop that updates the base register of an indexed access."""
    return Instruction(op=Op.ADD, dsts=(mem.base,), srcs=(mem.base,),
                       imm=mem.offset_imm, text=f"{text} <wb>")


def _simple_mem(inst, offset_imm, reg_operand, text_suffix=""):
    """A load/store µop with plain base+imm addressing."""
    mem = MemAccess(base=inst.mem.base, mode=AddrMode.OFFSET,
                    offset_imm=offset_imm, offset_reg=inst.mem.offset_reg,
                    offset_shift=inst.mem.offset_shift)
    if inst.is_store:
        return Instruction(op=_scalar_mem_op(inst.op, store=True),
                           srcs=(reg_operand,), mem=mem,
                           text=inst.text + text_suffix)
    return Instruction(op=_scalar_mem_op(inst.op, store=False),
                       dsts=(reg_operand,), mem=mem,
                       text=inst.text + text_suffix)


def _scalar_mem_op(op, store):
    """Map pair ops to their scalar element op."""
    if op is Op.LDP:
        return Op.LDR
    if op is Op.STP:
        return Op.STR
    return op


def expand(inst):
    """Expand one architectural instruction into its µop list."""
    if not inst.is_mem:
        return [inst]
    mem = inst.mem
    if inst.op in (Op.LDP, Op.STP):
        element = access_size(inst.op, inst.width)
        regs = inst.dsts if inst.op is Op.LDP else inst.srcs
        if mem.mode is AddrMode.PRE_INDEX:
            first = _writeback_add(mem, inst.text)
            return [first,
                    _simple_mem(inst, 0, regs[0], " <u0>"),
                    _simple_mem(inst, element, regs[1], " <u1>")]
        if mem.mode is AddrMode.POST_INDEX:
            return [_simple_mem(inst, 0, regs[0], " <u0>"),
                    _simple_mem(inst, element, regs[1], " <u1>"),
                    _writeback_add(mem, inst.text)]
        return [_simple_mem(inst, mem.offset_imm, regs[0], " <u0>"),
                _simple_mem(inst, mem.offset_imm + element, regs[1], " <u1>")]
    if mem.mode is AddrMode.PRE_INDEX:
        reg = inst.srcs[0] if inst.is_store else inst.dsts[0]
        return [_writeback_add(mem, inst.text), _simple_mem(inst, 0, reg)]
    if mem.mode is AddrMode.POST_INDEX:
        reg = inst.srcs[0] if inst.is_store else inst.dsts[0]
        return [_simple_mem(inst, 0, reg), _writeback_add(mem, inst.text)]
    return [inst]


def decode_program(program):
    """Pre-expand every instruction of a program.

    Returns a list (indexed by instruction index) of µop lists.
    """
    return [expand(inst) for inst in program.instructions]
