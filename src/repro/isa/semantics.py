"""Architectural semantics of every opcode (the golden functional model).

These are pure functions over operand *values*; the emulator supplies the
values and applies the results.  Keeping them side-effect free lets the
property-based tests compare them directly against plain Python arithmetic.
"""

import struct

from repro.isa.bits import (
    add_with_flags,
    clz,
    logic_flags,
    mask,
    rbit,
    sbfm,
    sub_with_flags,
    to_signed,
    ubfm,
)
from repro.isa.condition import condition_holds
from repro.isa.opcodes import Op


def _shift_amount(value, width):
    """ARMv8 variable shifts use the amount modulo the register width."""
    return value % width


def compute_int(op, a, b, width, reg_shift=0):
    """Integer ALU semantics: returns ``(result, flags_or_None)``.

    *a* and *b* are unsigned register/immediate values; *reg_shift* is the
    optional ``lsl #n`` applied to the second register operand.
    """
    b = mask(b << reg_shift, width) if reg_shift else mask(b, width)
    a = mask(a, width)
    if op is Op.ADD:
        return mask(a + b, width), None
    if op in (Op.ADDS, Op.CMN):
        return add_with_flags(a, b, width)
    if op is Op.SUB:
        return mask(a - b, width), None
    if op in (Op.SUBS, Op.CMP):
        return sub_with_flags(a, b, width)
    if op is Op.AND:
        return a & b, None
    if op in (Op.ANDS, Op.TST):
        result = a & b
        return result, logic_flags(result, width)
    if op is Op.ORR:
        return a | b, None
    if op is Op.EOR:
        return a ^ b, None
    if op is Op.BIC:
        return a & mask(~b, width), None
    if op is Op.LSL:
        return mask(a << _shift_amount(b, width), width), None
    if op is Op.LSR:
        return a >> _shift_amount(b, width), None
    if op is Op.ASR:
        return mask(to_signed(a, width) >> _shift_amount(b, width), width), None
    if op is Op.MUL:
        return mask(a * b, width), None
    if op is Op.SDIV:
        if b == 0:
            return 0, None
        quotient = int(to_signed(a, width) / to_signed(b, width))
        return mask(quotient, width), None
    if op is Op.UDIV:
        return (0 if b == 0 else a // b), None
    raise ValueError(f"not an integer ALU op: {op}")


def compute_unary(op, a, width, immr=None, imms=None):
    """Single-source integer ops: rbit/clz/ubfm/sbfm."""
    if op is Op.RBIT:
        return rbit(a, width)
    if op is Op.CLZ:
        return clz(a, width)
    if op is Op.UBFM:
        return ubfm(a, immr, imms, width)
    if op is Op.SBFM:
        return sbfm(a, immr, imms, width)
    raise ValueError(f"not a unary op: {op}")


def compute_csel(op, cond, flags, a, b, width):
    """csel/csinc/csneg/cset result."""
    if condition_holds(cond, flags):
        if op is Op.CSET:
            return 1
        return mask(a, width)
    if op is Op.CSEL:
        return mask(b, width)
    if op is Op.CSINC:
        return mask(b + 1, width)
    if op is Op.CSNEG:
        return mask(-to_signed(b, width), width)
    if op is Op.CSET:
        return 0
    raise ValueError(f"not a conditional select: {op}")


def compute_movk(dst_value, imm, shift, width):
    """movk: insert a 16-bit field at *shift* keeping the other bits."""
    keep_mask = mask(~(0xFFFF << shift), width)
    return (dst_value & keep_mask) | ((imm & 0xFFFF) << shift)


def branch_taken(op, cond, flags, src_value, bit):
    """Direction of a (possibly conditional) branch.

    Unconditional/indirect branches are always taken.
    """
    if op is Op.B_COND:
        return condition_holds(cond, flags)
    if op is Op.CBZ:
        return src_value == 0
    if op is Op.CBNZ:
        return src_value != 0
    if op is Op.TBZ:
        return not (src_value >> bit) & 1
    if op is Op.TBNZ:
        return bool((src_value >> bit) & 1)
    return True


# -- floating point (IEEE754 double bit patterns stored in 64-bit regs) --------

def _as_float(bits):
    return struct.unpack("<d", struct.pack("<Q", bits & 0xFFFF_FFFF_FFFF_FFFF))[0]


def _as_bits(value):
    try:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    except (OverflowError, ValueError):
        return struct.unpack("<Q", struct.pack("<d", float("inf")))[0]


def compute_fp(op, a_bits, b_bits, c_bits=0):
    """FP arithmetic on IEEE754 bit patterns: returns result bits."""
    a, b = _as_float(a_bits), _as_float(b_bits)
    if op is Op.FADD:
        return _as_bits(a + b)
    if op is Op.FSUB:
        return _as_bits(a - b)
    if op is Op.FMUL:
        return _as_bits(a * b)
    if op is Op.FDIV:
        if b == 0.0:
            return _as_bits(float("inf") if a > 0 else float("-inf") if a < 0 else float("nan"))
        return _as_bits(a / b)
    if op is Op.FMADD:
        return _as_bits(a * b + _as_float(c_bits))
    if op is Op.FMOV:
        return a_bits
    raise ValueError(f"not an FP op: {op}")


def compute_fcmp(a_bits, b_bits):
    """NZCV flags produced by fcmp (ARMv8 FP compare flag mapping)."""
    from repro.isa.bits import nzcv

    a, b = _as_float(a_bits), _as_float(b_bits)
    if a != a or b != b:  # NaN: unordered
        return nzcv(False, False, True, True)
    if a == b:
        return nzcv(False, True, True, False)
    if a < b:
        return nzcv(True, False, False, False)
    return nzcv(False, False, True, False)


def compute_fcvtzs(a_bits, width):
    """FP to signed integer, round toward zero, saturating."""
    value = _as_float(a_bits)
    if value != value:  # NaN
        return 0
    hi = (1 << (width - 1)) - 1
    lo = -(1 << (width - 1))
    clamped = max(lo, min(hi, int(value)))
    return mask(clamped, width)


def compute_scvtf(a_value, width):
    """Signed integer to FP bits."""
    return _as_bits(float(to_signed(a_value, width)))
