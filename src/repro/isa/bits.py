"""Fixed-width integer arithmetic helpers.

All architectural values are stored as non-negative Python ints masked to
their register width.  These helpers centralize the masking and the NZCV
flag computations so the functional emulator and the strength-reduction
logic agree bit-for-bit.
"""

MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF

# NZCV bit positions inside the 4-bit flags value used throughout the repo.
FLAG_N = 0x8
FLAG_Z = 0x4
FLAG_C = 0x2
FLAG_V = 0x1


def mask(value, width):
    """Truncate *value* to an unsigned *width*-bit quantity."""
    return value & (MASK64 if width == 64 else MASK32)


def to_signed(value, width=64):
    """Reinterpret an unsigned *width*-bit value as a signed integer."""
    sign_bit = 1 << (width - 1)
    value = mask(value, width)
    return value - (1 << width) if value & sign_bit else value


def to_unsigned(value, width=64):
    """Reinterpret a (possibly negative) integer as unsigned *width*-bit."""
    return value & ((1 << width) - 1)


def fits_signed(value, bits):
    """True when the *unsigned 64-bit* value is a sign-extended ``bits``-bit
    integer, i.e. representable by a signed ``bits``-bit immediate.

    This is the test Targeted VP applies before inlining a value into a
    physical register name (the paper uses ``bits == 9``).
    """
    signed = to_signed(value, 64)
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= signed <= hi


def fits_signed_32(value, bits):
    """Like :func:`fits_signed` but for a 32-bit register value."""
    signed = to_signed(value, 32)
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= signed <= hi


def nzcv(n, z, c, v):
    """Pack flag booleans into the canonical 4-bit NZCV value."""
    return (FLAG_N if n else 0) | (FLAG_Z if z else 0) | (FLAG_C if c else 0) | (FLAG_V if v else 0)


def add_with_flags(a, b, width, carry_in=0):
    """ARMv8 ``ADDS``: return ``(result, nzcv)`` for ``a + b + carry_in``."""
    a = mask(a, width)
    b = mask(b, width)
    unsigned_sum = a + b + carry_in
    result = mask(unsigned_sum, width)
    n = bool(result >> (width - 1))
    z = result == 0
    c = unsigned_sum > mask(MASK64, width)
    signed_sum = to_signed(a, width) + to_signed(b, width) + carry_in
    v = not (-(1 << (width - 1)) <= signed_sum <= (1 << (width - 1)) - 1)
    return result, nzcv(n, z, c, v)


def sub_with_flags(a, b, width):
    """ARMv8 ``SUBS``: computed as ``a + ~b + 1`` so carry means no-borrow."""
    b_inverted = mask(~mask(b, width), width)
    return add_with_flags(a, b_inverted, width, carry_in=1)


def logic_flags(result, width):
    """NZCV produced by ARMv8 flag-setting logical ops (``ANDS``): C=V=0."""
    result = mask(result, width)
    n = bool(result >> (width - 1))
    z = result == 0
    return nzcv(n, z, False, False)


def rbit(value, width):
    """Reverse the bit order of *value* within *width* bits."""
    value = mask(value, width)
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def clz(value, width):
    """Count leading zero bits of *value* within *width* bits."""
    value = mask(value, width)
    if value == 0:
        return width
    return width - value.bit_length()


def ubfm(value, immr, imms, width):
    """ARMv8 unsigned bitfield move (covers ``lsr``/``ubfx``/``uxtb`` ...).

    Semantics (simplified to the common ``imms >= immr`` extract form and
    the ``imms + 1 == immr`` shift-left form used by the assembler aliases):
    rotate right by ``immr`` then keep bits ``0..imms`` zero-extended.
    """
    value = mask(value, width)
    rotated = ((value >> immr) | (value << (width - immr))) if immr else value
    rotated = mask(rotated, width)
    if imms >= immr:
        # Extract bits immr..imms, place at bit 0.
        nbits = imms - immr + 1
        return (value >> immr) & ((1 << nbits) - 1)
    # lsl alias: bits 0..imms moved to immr-rotated position.
    nbits = imms + 1
    field = value & ((1 << nbits) - 1)
    return mask(field << (width - immr), width)


def sbfm(value, immr, imms, width):
    """ARMv8 signed bitfield move (covers ``asr``/``sxtb``/``sxth``)."""
    value = mask(value, width)
    if imms >= immr:
        nbits = imms - immr + 1
        field = (value >> immr) & ((1 << nbits) - 1)
        if field & (1 << (nbits - 1)):
            field |= mask(MASK64, width) ^ ((1 << nbits) - 1)
        return mask(field, width)
    nbits = imms + 1
    field = value & ((1 << nbits) - 1)
    if field & (1 << (nbits - 1)):
        field |= mask(MASK64, width) ^ ((1 << nbits) - 1)
    return mask(field << (width - immr), width)
