"""Two-pass text assembler for the mini-ISA.

Supported syntax (a pragmatic subset of GNU AArch64 assembly)::

    .text                       // default section
    loop:
        ldr   x1, [x0, #8]!     // pre-indexed load
        add   x2, x2, x1
        subs  x3, x3, #1
        b.ne  loop
        hlt

    .data
    table:  .quad 1, 2, 3, next // data labels may reference each other
    next:   .zero 64

Comments start with ``//`` or ``;``.  Immediates are written ``#imm`` and
may be decimal, hex (``0x``) or negative.  ``adr xd, label`` materializes a
code or data address.
"""

import re
import struct
from dataclasses import replace

from repro.isa.condition import parse_cond
from repro.isa.instructions import AddrMode, Instruction, MemAccess
from repro.isa.opcodes import Op
from repro.isa.program import DATA_BASE, Program
from repro.isa.registers import Operand, XZR, parse_reg

_THREE_REG_OPS = {
    "add": Op.ADD, "adds": Op.ADDS, "sub": Op.SUB, "subs": Op.SUBS,
    "and": Op.AND, "ands": Op.ANDS, "orr": Op.ORR, "eor": Op.EOR,
    "bic": Op.BIC, "mul": Op.MUL, "sdiv": Op.SDIV, "udiv": Op.UDIV,
    "lsl": Op.LSL, "lsr": Op.LSR, "asr": Op.ASR,
}
_TWO_REG_OPS = {"rbit": Op.RBIT, "clz": Op.CLZ}
_CMP_OPS = {"cmp": Op.CMP, "cmn": Op.CMN, "tst": Op.TST}
_CSEL_OPS = {"csel": Op.CSEL, "csinc": Op.CSINC, "csneg": Op.CSNEG}
_MEM_OPS = {
    "ldr": Op.LDR, "ldrb": Op.LDRB, "ldrh": Op.LDRH, "ldrsw": Op.LDRSW,
    "str": Op.STR, "strb": Op.STRB, "strh": Op.STRH,
}
_FP3_OPS = {"fadd": Op.FADD, "fsub": Op.FSUB, "fmul": Op.FMUL, "fdiv": Op.FDIV}


class AssemblyError(ValueError):
    """Raised on any syntax or semantic error, with line information."""

    def __init__(self, message, line_no=None, line=""):
        location = f" (line {line_no}: {line.strip()!r})" if line_no else ""
        super().__init__(message + location)


def _strip_comment(line):
    for marker in ("//", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text):
    """Split an operand string on top-level commas (respecting brackets)."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_imm(token):
    token = token.strip()
    if token.startswith("#"):
        token = token[1:]
    try:
        return int(token, 0)
    except ValueError:
        return None


def _require_reg(token, line_no, line):
    operand = parse_reg(token.strip())
    if operand is None:
        raise AssemblyError(f"expected register, got {token!r}", line_no, line)
    return operand


class _Assembler:
    def __init__(self, source):
        self.source = source
        self.instructions = []
        self.labels = {}
        self.data_labels = {}
        self.data_items = []     # (address, kind, payload) resolved in pass 2
        self.data_cursor = DATA_BASE
        self.section = "text"
        self.adr_fixups = []     # instruction indices whose imm is a label

    # -- pass 1 ---------------------------------------------------------------
    def run(self):
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            self._line(line, line_no, raw)
        self._apply_fixups()
        program = Program(
            instructions=self.instructions,
            labels=self.labels,
            data_labels=self.data_labels,
            data_image=self._emit_data(),
        )
        self._check_branch_targets(program)
        program.validate()
        return program

    def _line(self, line, line_no, raw):
        match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
        if match:
            label, rest = match.group(1), match.group(2)
            if self.section == "text":
                self._define_code_label(label, line_no, raw)
            else:
                self._define_data_label(label, line_no, raw)
            if rest:
                self._line(rest, line_no, raw)
            return
        if line.startswith("."):
            self._directive(line, line_no, raw)
            return
        if self.section != "text":
            raise AssemblyError("instruction outside .text", line_no, raw)
        self._instruction(line, line_no, raw)

    def _define_code_label(self, label, line_no, raw):
        if label in self.labels or label in self.data_labels:
            raise AssemblyError(f"duplicate label {label!r}", line_no, raw)
        self.labels[label] = len(self.instructions)

    def _define_data_label(self, label, line_no, raw):
        if label in self.labels or label in self.data_labels:
            raise AssemblyError(f"duplicate label {label!r}", line_no, raw)
        self.data_labels[label] = self.data_cursor

    # -- directives -------------------------------------------------------------
    def _directive(self, line, line_no, raw):
        parts = line.split(None, 1)
        name = parts[0]
        args = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self.section = "text"
        elif name == ".data":
            self.section = "data"
        elif name == ".align":
            amount = int(args, 0)
            pad = -self.data_cursor % amount
            if pad:
                self.data_items.append((self.data_cursor, "zero", pad))
                self.data_cursor += pad
        elif name == ".zero":
            count = int(args, 0)
            self.data_items.append((self.data_cursor, "zero", count))
            self.data_cursor += count
        elif name in (".quad", ".word", ".half", ".byte"):
            size = {".quad": 8, ".word": 4, ".half": 2, ".byte": 1}[name]
            for token in _split_operands(args):
                self.data_items.append((self.data_cursor, "int", (size, token)))
                self.data_cursor += size
        elif name == ".double":
            for token in _split_operands(args):
                self.data_items.append((self.data_cursor, "double", float(token)))
                self.data_cursor += 8
        else:
            raise AssemblyError(f"unknown directive {name!r}", line_no, raw)

    def _emit_data(self):
        chunks = []
        for address, kind, payload in self.data_items:
            if kind == "zero":
                chunks.append((address, bytes(payload)))
            elif kind == "double":
                chunks.append((address, struct.pack("<d", payload)))
            else:
                size, token = payload
                value = _parse_imm(token)
                if value is None:
                    if token in self.data_labels:
                        value = self.data_labels[token]
                    elif token in self.labels:
                        from repro.isa.program import CODE_BASE, INST_BYTES

                        value = CODE_BASE + self.labels[token] * INST_BYTES
                    else:
                        raise AssemblyError(f"bad data value {token!r}")
                value &= (1 << (8 * size)) - 1
                chunks.append((address, value.to_bytes(size, "little")))
        return chunks

    def _apply_fixups(self):
        for index in self.adr_fixups:
            inst = self.instructions[index]
            label = inst.target
            if label in self.data_labels:
                address = self.data_labels[label]
            elif label in self.labels:
                address = None  # resolved against Program below
            else:
                raise AssemblyError(f"adr: unknown label {label!r}")
            if address is not None:
                self.instructions[index] = replace(inst, imm=address, target=None)

    def _check_branch_targets(self, program):
        for inst in program.instructions:
            if inst.target is not None and inst.op is not Op.MOVZ:
                if inst.target not in program.labels:
                    raise AssemblyError(
                        f"undefined branch target {inst.target!r} in {inst.text!r}")
            elif inst.target is not None:  # leftover adr to a code label
                address = program.pc_of(program.labels[inst.target])
                idx = program.instructions.index(inst)
                program.instructions[idx] = replace(inst, imm=address, target=None)

    # -- instructions -----------------------------------------------------------
    def _emit(self, **kwargs):
        self.instructions.append(Instruction(**kwargs))

    def _instruction(self, line, line_no, raw):
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(operand_text)
        try:
            self._dispatch(mnemonic, operands, line)
        except AssemblyError:
            raise
        except (ValueError, KeyError, IndexError) as exc:
            raise AssemblyError(str(exc), line_no, raw) from exc

    def _dispatch(self, mnemonic, ops, text):
        if mnemonic in _THREE_REG_OPS:
            self._three_reg(_THREE_REG_OPS[mnemonic], ops, text)
        elif mnemonic in _TWO_REG_OPS:
            dst, src = _require_reg(ops[0], None, text), _require_reg(ops[1], None, text)
            self._emit(op=_TWO_REG_OPS[mnemonic], dsts=(dst,), srcs=(src,), text=text)
        elif mnemonic in _CMP_OPS:
            self._compare(_CMP_OPS[mnemonic], ops, text)
        elif mnemonic in _CSEL_OPS:
            dst = _require_reg(ops[0], None, text)
            s1 = _require_reg(ops[1], None, text)
            s2 = _require_reg(ops[2], None, text)
            cond = parse_cond(ops[3])
            self._emit(op=_CSEL_OPS[mnemonic], dsts=(dst,), srcs=(s1, s2),
                       cond=cond, text=text)
        elif mnemonic == "cset":
            dst = _require_reg(ops[0], None, text)
            cond = parse_cond(ops[1])
            self._emit(op=Op.CSET, dsts=(dst,),
                       srcs=(Operand(XZR, dst.width), Operand(XZR, dst.width)),
                       cond=cond, text=text)
        elif mnemonic == "madd":
            regs = tuple(_require_reg(tok, None, text) for tok in ops)
            self._emit(op=Op.MADD, dsts=regs[:1], srcs=regs[1:], text=text)
        elif mnemonic == "mov":
            self._mov(ops, text)
        elif mnemonic in ("movz", "movn"):
            self._movz(Op.MOVZ if mnemonic == "movz" else Op.MOVN, ops, text)
        elif mnemonic == "movk":
            self._movk(ops, text)
        elif mnemonic == "adr":
            dst = _require_reg(ops[0], None, text)
            self._emit(op=Op.MOVZ, dsts=(dst,), imm=None, target=ops[1], text=text)
            self.adr_fixups.append(len(self.instructions) - 1)
        elif mnemonic in ("ubfm", "sbfm"):
            self._bfm(Op.UBFM if mnemonic == "ubfm" else Op.SBFM, ops, text)
        elif mnemonic in ("ubfx", "sbfx"):
            dst = _require_reg(ops[0], None, text)
            src = _require_reg(ops[1], None, text)
            lsb, width = _parse_imm(ops[2]), _parse_imm(ops[3])
            op = Op.UBFM if mnemonic == "ubfx" else Op.SBFM
            self._emit(op=op, dsts=(dst,), srcs=(src,), imm=lsb,
                       imm2=lsb + width - 1, text=text)
        elif mnemonic in ("uxtb", "uxth", "sxtb", "sxth"):
            dst = _require_reg(ops[0], None, text)
            src = _require_reg(ops[1], None, text)
            imms = 7 if mnemonic.endswith("b") else 15
            op = Op.UBFM if mnemonic.startswith("u") else Op.SBFM
            self._emit(op=op, dsts=(dst,), srcs=(src,), imm=0, imm2=imms, text=text)
        elif mnemonic.startswith("b.") and len(mnemonic) > 2:
            cond = parse_cond(mnemonic[2:])
            self._emit(op=Op.B_COND, cond=cond, target=ops[0], text=text)
        elif mnemonic in ("b", "bl"):
            self._emit(op=Op.B if mnemonic == "b" else Op.BL, target=ops[0], text=text)
        elif mnemonic in ("cbz", "cbnz"):
            src = _require_reg(ops[0], None, text)
            op = Op.CBZ if mnemonic == "cbz" else Op.CBNZ
            self._emit(op=op, srcs=(src,), target=ops[1], text=text)
        elif mnemonic in ("tbz", "tbnz"):
            src = _require_reg(ops[0], None, text)
            bit = _parse_imm(ops[1])
            op = Op.TBZ if mnemonic == "tbz" else Op.TBNZ
            self._emit(op=op, srcs=(src,), imm2=bit, target=ops[2], text=text)
        elif mnemonic in ("br", "blr"):
            src = _require_reg(ops[0], None, text)
            self._emit(op=Op.BR if mnemonic == "br" else Op.BLR, srcs=(src,), text=text)
        elif mnemonic == "ret":
            src = _require_reg(ops[0], None, text) if ops else Operand(30, 64)
            self._emit(op=Op.RET, srcs=(src,), text=text)
        elif mnemonic in _MEM_OPS:
            self._mem(_MEM_OPS[mnemonic], ops, text)
        elif mnemonic in ("ldp", "stp"):
            self._mem_pair(Op.LDP if mnemonic == "ldp" else Op.STP, ops, text)
        elif mnemonic in _FP3_OPS:
            regs = tuple(_require_reg(tok, None, text) for tok in ops)
            self._emit(op=_FP3_OPS[mnemonic], dsts=regs[:1], srcs=regs[1:], text=text)
        elif mnemonic == "fmadd":
            regs = tuple(_require_reg(tok, None, text) for tok in ops)
            self._emit(op=Op.FMADD, dsts=regs[:1], srcs=regs[1:], text=text)
        elif mnemonic == "fmov":
            dst = _require_reg(ops[0], None, text)
            src = parse_reg(ops[1].strip())
            if src is not None:
                self._emit(op=Op.FMOV, dsts=(dst,), srcs=(src,), text=text)
            else:
                token = ops[1].lstrip("#")
                raw_bits = struct.unpack("<Q", struct.pack("<d", float(token)))[0]
                self._emit(op=Op.FMOV, dsts=(dst,), imm=raw_bits, text=text)
        elif mnemonic == "fcmp":
            s1 = _require_reg(ops[0], None, text)
            s2 = _require_reg(ops[1], None, text)
            self._emit(op=Op.FCMP, srcs=(s1, s2), text=text)
        elif mnemonic == "scvtf":
            dst = _require_reg(ops[0], None, text)
            src = _require_reg(ops[1], None, text)
            self._emit(op=Op.SCVTF, dsts=(dst,), srcs=(src,), text=text)
        elif mnemonic == "fcvtzs":
            dst = _require_reg(ops[0], None, text)
            src = _require_reg(ops[1], None, text)
            self._emit(op=Op.FCVTZS, dsts=(dst,), srcs=(src,), text=text)
        elif mnemonic == "nop":
            self._emit(op=Op.NOP, text=text)
        elif mnemonic == "hlt":
            self._emit(op=Op.HLT, text=text)
        else:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}")

    def _three_reg(self, op, ops, text):
        dst = _require_reg(ops[0], None, text)
        src1 = _require_reg(ops[1], None, text)
        shift = 0
        if len(ops) == 4:
            match = re.match(r"lsl\s+#(\d+)$", ops[3].strip(), re.IGNORECASE)
            if not match:
                raise AssemblyError(f"bad shift specifier {ops[3]!r}")
            shift = int(match.group(1))
            ops = ops[:3]
        imm = _parse_imm(ops[2])
        if imm is not None:
            self._emit(op=op, dsts=(dst,), srcs=(src1,), imm=imm << shift, text=text)
        else:
            src2 = _require_reg(ops[2], None, text)
            self._emit(op=op, dsts=(dst,), srcs=(src1, src2), imm2=shift or None,
                       text=text)

    def _compare(self, op, ops, text):
        src1 = _require_reg(ops[0], None, text)
        imm = _parse_imm(ops[1])
        if imm is not None:
            self._emit(op=op, srcs=(src1,), imm=imm, text=text)
        else:
            src2 = _require_reg(ops[1], None, text)
            self._emit(op=op, srcs=(src1, src2), text=text)

    def _mov(self, ops, text):
        dst = _require_reg(ops[0], None, text)
        imm = _parse_imm(ops[1])
        if imm is not None:
            width_mask = (1 << dst.width) - 1
            self._emit(op=Op.MOVZ, dsts=(dst,), imm=imm & width_mask, text=text)
        else:
            src = _require_reg(ops[1], None, text)
            self._emit(op=Op.MOV, dsts=(dst,), srcs=(src,), text=text)

    def _movz(self, op, ops, text):
        dst = _require_reg(ops[0], None, text)
        imm = _parse_imm(ops[1])
        shift = 0
        if len(ops) == 3:
            match = re.match(r"lsl\s+#(\d+)$", ops[2].strip(), re.IGNORECASE)
            shift = int(match.group(1))
        value = imm << shift
        if op is Op.MOVN:
            value = ~value & ((1 << dst.width) - 1)
        self._emit(op=Op.MOVZ if op is Op.MOVN else op, dsts=(dst,),
                   imm=value, text=text)

    def _movk(self, ops, text):
        dst = _require_reg(ops[0], None, text)
        imm = _parse_imm(ops[1])
        shift = 0
        if len(ops) == 3:
            match = re.match(r"lsl\s+#(\d+)$", ops[2].strip(), re.IGNORECASE)
            shift = int(match.group(1))
        self._emit(op=Op.MOVK, dsts=(dst,), srcs=(dst,), imm=imm, imm2=shift,
                   text=text)

    def _bfm(self, op, ops, text):
        dst = _require_reg(ops[0], None, text)
        src = _require_reg(ops[1], None, text)
        immr, imms = _parse_imm(ops[2]), _parse_imm(ops[3])
        self._emit(op=op, dsts=(dst,), srcs=(src,), imm=immr, imm2=imms, text=text)

    def _parse_mem_operand(self, token, trailing, text):
        token = token.strip()
        writeback_pre = token.endswith("!")
        if writeback_pre:
            token = token[:-1].strip()
        if not (token.startswith("[") and token.endswith("]")):
            raise AssemblyError(f"bad memory operand {token!r}")
        inner = _split_operands(token[1:-1])
        base = _require_reg(inner[0], None, text)
        offset_imm, offset_reg, offset_shift = 0, None, 0
        if len(inner) >= 2:
            imm = _parse_imm(inner[1])
            if imm is not None:
                offset_imm = imm
            else:
                offset_reg = _require_reg(inner[1], None, text)
                if len(inner) == 3:
                    match = re.match(r"lsl\s+#(\d+)$", inner[2].strip(), re.IGNORECASE)
                    if not match:
                        raise AssemblyError(f"bad index shift {inner[2]!r}")
                    offset_shift = int(match.group(1))
        mode = AddrMode.OFFSET
        if writeback_pre:
            mode = AddrMode.PRE_INDEX
        elif trailing is not None:
            mode = AddrMode.POST_INDEX
            offset_imm = _parse_imm(trailing)
            if offset_imm is None:
                raise AssemblyError(f"bad post-index amount {trailing!r}")
        return MemAccess(base=base, mode=mode, offset_imm=offset_imm,
                         offset_reg=offset_reg, offset_shift=offset_shift)

    def _mem(self, op, ops, text):
        reg = _require_reg(ops[0], None, text)
        trailing = ops[2] if len(ops) == 3 else None
        mem = self._parse_mem_operand(ops[1], trailing, text)
        if op in (Op.STR, Op.STRB, Op.STRH):
            self._emit(op=op, srcs=(reg,), mem=mem, text=text)
        else:
            self._emit(op=op, dsts=(reg,), mem=mem, text=text)

    def _mem_pair(self, op, ops, text):
        r1 = _require_reg(ops[0], None, text)
        r2 = _require_reg(ops[1], None, text)
        trailing = ops[3] if len(ops) == 4 else None
        mem = self._parse_mem_operand(ops[2], trailing, text)
        if op is Op.STP:
            self._emit(op=op, srcs=(r1, r2), mem=mem, text=text)
        else:
            self._emit(op=op, dsts=(r1, r2), mem=mem, text=text)


def assemble(source):
    """Assemble *source* text into a :class:`~repro.isa.program.Program`."""
    return _Assembler(source).run()
