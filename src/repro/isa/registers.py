"""Architectural register namespace.

Registers are identified by small integers so the rename machinery can use
them as array indices:

* ``0 .. 30``  — general purpose registers ``x0`` .. ``x30``
* ``31``       — ``xzr``, the hardwired zero register
* ``32``       — ``sp``, the stack pointer (kept distinct from ``xzr``)
* ``33``       — ``nzcv``, the condition-flags pseudo register
* ``34 .. 65`` — floating point registers ``d0`` .. ``d31``

An :class:`Operand` couples a register id with an access *width* (32 for
``w`` views, 64 for ``x``/``d`` views).  Writing a ``w`` register
zero-extends into the 64-bit architectural register, as on real AArch64 —
this is what makes the paper's move-elimination width-mismatch rule
meaningful.
"""

from dataclasses import dataclass

N_GPR = 31
XZR = 31
SP = 32
FLAGS = 33
NZCV = FLAGS
FP_BASE = 34
N_FPR = 32
N_ARCH_REGS = FP_BASE + N_FPR


class Reg:
    """Namespace of symbolic register-id constructors."""

    @staticmethod
    def x(index):
        """General purpose register id for ``x<index>``."""
        if not 0 <= index < N_GPR:
            raise ValueError(f"x{index} out of range")
        return index

    @staticmethod
    def d(index):
        """Floating point register id for ``d<index>``."""
        if not 0 <= index < N_FPR:
            raise ValueError(f"d{index} out of range")
        return FP_BASE + index


def is_gpr(reg):
    """True for ``x0..x30`` and ``xzr`` (not ``sp``, not flags, not FP)."""
    return 0 <= reg <= XZR


def is_gpr_or_sp(reg):
    """True for any integer register including the stack pointer."""
    return 0 <= reg <= SP


def is_fpr(reg):
    """True for ``d0..d31``."""
    return FP_BASE <= reg < FP_BASE + N_FPR


def reg_name(reg, width=64):
    """Human-readable name for a register id (used by disassembly/debug)."""
    if reg == XZR:
        return "xzr" if width == 64 else "wzr"
    if reg == SP:
        return "sp"
    if reg == FLAGS:
        return "nzcv"
    if is_fpr(reg):
        return f"d{reg - FP_BASE}"
    prefix = "x" if width == 64 else "w"
    return f"{prefix}{reg}"


@dataclass(frozen=True)
class Operand:
    """A register operand: id plus access width (32 or 64 bits)."""

    reg: int
    width: int = 64

    def __post_init__(self):
        if self.width not in (32, 64):
            raise ValueError(f"bad operand width {self.width}")

    @property
    def is_zero_reg(self):
        """True when this operand is the hardwired zero register."""
        return self.reg == XZR

    def __repr__(self):
        return reg_name(self.reg, self.width)


def parse_reg(token):
    """Parse a register token like ``x3``, ``w12``, ``xzr``, ``sp``, ``d7``.

    Returns an :class:`Operand` or ``None`` when the token is not a
    register name.
    """
    token = token.lower()
    if token in ("xzr",):
        return Operand(XZR, 64)
    if token in ("wzr",):
        return Operand(XZR, 32)
    if token == "sp":
        return Operand(SP, 64)
    if len(token) >= 2 and token[0] in "xwd" and token[1:].isdigit():
        index = int(token[1:])
        if token[0] == "d":
            if index < N_FPR:
                return Operand(Reg.d(index), 64)
            return None
        if index < N_GPR:
            return Operand(index, 64 if token[0] == "x" else 32)
    return None
