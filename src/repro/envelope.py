"""The versioned envelope every stable result document shares.

Every machine-readable document this repo emits — :func:`repro.api.simulate`
/ :func:`~repro.api.sweep` / :func:`~repro.api.explore` /
:func:`~repro.api.headroom` results, CLI ``--save`` files and the job
service's payloads — carries the same three-field header::

    {"schema":       "<family>/<major>",
     "code_version":  <16-hex hash of every src/repro source file>,
     "fingerprint":   <16-hex hash of the request identity>,
     ...family-specific body...}

``schema`` names the document family and its major version: a major bump
means the body shape changed and old documents must not be deserialized
silently.  ``code_version`` records the exact simulator sources that
produced the numbers (:func:`repro.harness.cache.code_version_hash`).
``fingerprint`` hashes the *request* identity — the config knobs for a
single simulation, the whole (workload × config × budget) matrix for a
sweep, the (space, strategy, seed, budget) tuple for an exploration —
and is also what the job service dedupes concurrent submissions on.

Two invariants the envelope keeps:

* ``to_dict()`` bodies contain only deterministic data — provenance
  (wall time, cache-hit counters, fault reports) lives outside the
  default payload, so a cold run, a warm cache read and a journal
  resume serialize **byte-identically** under :func:`canonical_json`.
* ``from_dict()`` validates the schema family before touching the body,
  so a payload from another family (or a future major version) raises
  :class:`ValueError` instead of building a half-filled result.
"""

import hashlib
import json

from repro.harness.cache import code_version_hash

__all__ = ["canonical_json", "check_schema", "header",
           "request_fingerprint"]


def header(schema, fingerprint):
    """The three envelope header fields, in documented order."""
    return {
        "schema": schema,
        "code_version": code_version_hash(),
        "fingerprint": fingerprint,
    }


def check_schema(payload, family):
    """Validate *payload*'s ``schema`` against a document *family*.

    Returns the schema string.  Raises :class:`ValueError` when the
    payload is not a dict, carries no schema, or belongs to a different
    family — the caller never deserializes a foreign document.
    """
    schema = payload.get("schema") if isinstance(payload, dict) else None
    if not isinstance(schema, str) or schema.split("/", 1)[0] != family:
        raise ValueError(
            f"not a {family!r} document (schema={schema!r})")
    return schema


def request_fingerprint(kind, **identity):
    """A short stable hash of one request's identity.

    *identity* values must be plain JSON data (strings, numbers, lists,
    None); key order never matters, list order always does — a sweep of
    the same points in a different display order is a different result
    document, so it must be a different fingerprint.
    """
    blob = json.dumps([kind, sorted(identity.items())],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def canonical_json(payload):
    """The one canonical serialization of an enveloped payload.

    Sorted keys, no whitespace: two equal payloads — e.g. the job
    service's stored copy of a sweep and a direct ``api.sweep()`` of the
    same matrix — produce byte-identical strings.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
