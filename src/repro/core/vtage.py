"""VTAGE value predictor (Perais & Seznec, HPCA 2014).

Structure per Table 2 of the paper: one tagged base table (2^12 entries,
4-bit tags — an LVP-like last-value table) plus 7 tagged tables with
geometric branch-history lengths 2..128 (log2 sizes 9,9,8,8,8,7,7 and tag
widths 9,9,10,10,11,11,12).  Confidence is a 3-bit Forward Probabilistic
Counter with 1/16 acceptance; tagged entries carry a 2-bit useful field.

The *value field width* is the knob that turns this into the paper's three
predictors: 64 bits (GVP, 55.2KB), 9 bits (TVP, 13.9KB) or 1 bit (MVP,
7.9KB) — see :mod:`repro.core.storage` for the exact byte accounting.

Because predictions are generated in the frontend but trained at retire,
``predict`` returns an opaque ``info`` tuple that the pipeline keeps in the
VP-tracking FIFO and hands back to ``train`` — the hardware analogue of
carrying table/index down the pipe instead of re-hashing.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.fpc import ForwardProbabilisticCounter
from repro.core.modes import decode_value_field, encode_value_field
from repro.util.rng import XorShift64
from repro.util.series import geometric_history_lengths


@dataclass
class VtageConfig:
    """Geometry of a VTAGE predictor (defaults = the paper's Table 2)."""

    value_bits: int = 64
    base_log2: int = 12
    base_tag_bits: int = 4
    tagged_log2: Tuple[int, ...] = (9, 9, 8, 8, 8, 7, 7)
    tag_bits: Tuple[int, ...] = (9, 9, 10, 10, 11, 11, 12)
    min_history: int = 2
    max_history: int = 128
    confidence_bits: int = 3
    fpc_one_in: int = 16
    useful_bits: int = 2
    useful_reset_period: int = 128 * 1024

    def __post_init__(self):
        if len(self.tagged_log2) != len(self.tag_bits):
            raise ValueError("tagged_log2 and tag_bits must be equal length")

    @property
    def n_tagged(self):
        return len(self.tagged_log2)

    @property
    def history_lengths(self):
        return geometric_history_lengths(self.min_history, self.max_history,
                                         self.n_tagged)

    def scaled(self, log2_delta):
        """Same tables/histories, entry counts scaled by 2^log2_delta.

        This is exactly the paper's Table 3 protocol: "same number of
        tables/history bits, only table size is modified".
        """
        return VtageConfig(
            value_bits=self.value_bits,
            base_log2=max(self.base_log2 + log2_delta, 4),
            base_tag_bits=self.base_tag_bits,
            tagged_log2=tuple(max(n + log2_delta, 4) for n in self.tagged_log2),
            tag_bits=self.tag_bits,
            min_history=self.min_history,
            max_history=self.max_history,
            confidence_bits=self.confidence_bits,
            fpc_one_in=self.fpc_one_in,
            useful_bits=self.useful_bits,
            useful_reset_period=self.useful_reset_period,
        )


@dataclass(slots=True)
class Prediction:
    """Outcome of a VTAGE lookup."""

    value: Optional[int]       # full 64-bit predicted value (None: no hit)
    confident: bool            # FPC saturated -> usable by the pipeline
    info: tuple = field(repr=False, default=())

    @property
    def hit(self):
        return self.value is not None


class Vtage:
    """The predictor.  Pair each ``predict`` with exactly one ``train``
    (or ``abandon`` for squashed, never-validated predictions)."""

    def __init__(self, config=None, history=None, seed=0xC0FFEE42):
        from repro.frontend.history import GlobalHistory

        self.config = config or VtageConfig()
        self.history = history if history is not None else GlobalHistory()
        self._rng = XorShift64(seed)
        self._fpc = ForwardProbabilisticCounter(
            self.config.confidence_bits, self.config.fpc_one_in, self._rng)
        cfg = self.config
        # Tables as parallel arrays (tag / value field / FPC confidence /
        # useful / valid) rather than one object per entry: every model
        # instantiation builds ~6K entries, and the hot predict loop only
        # ever touches one or two fields per probe.
        base_size = 1 << cfg.base_log2
        self._base_tags = [0] * base_size
        self._base_values = [0] * base_size
        self._base_conf = bytearray(base_size)
        self._base_valid = bytearray(base_size)
        sizes = [1 << log2 for log2 in cfg.tagged_log2]
        self._tbl_tags = [[0] * size for size in sizes]
        self._tbl_values = [[0] * size for size in sizes]
        self._tbl_conf = [bytearray(size) for size in sizes]
        self._tbl_valid = [bytearray(size) for size in sizes]
        self._tbl_useful = [bytearray(size) for size in sizes]
        lengths = cfg.history_lengths
        self._index_folds = [self.history.fold(length, log2)
                             for length, log2 in zip(lengths, cfg.tagged_log2)]
        self._tag_folds = [self.history.fold(length, bits)
                           for length, bits in zip(lengths, cfg.tag_bits)]
        # Immutable hash parameters, unpacked for the hot predict loop.
        self._log2s = tuple(cfg.tagged_log2)
        self._idx_masks = tuple((1 << log2) - 1 for log2 in cfg.tagged_log2)
        self._tag_masks = tuple((1 << bits) - 1 for bits in cfg.tag_bits)
        self._trainings = 0
        # Statistics.
        self.stat_lookups = 0
        self.stat_confident = 0
        self.stat_correct_trained = 0
        self.stat_incorrect_trained = 0

    # -- hashing -----------------------------------------------------------------
    def _base_index(self, pc):
        return (pc >> 2) & ((1 << self.config.base_log2) - 1)

    def _base_tag(self, pc):
        return (pc >> (2 + self.config.base_log2)) & ((1 << self.config.base_tag_bits) - 1)

    def _index(self, table, pc):
        log2 = self.config.tagged_log2[table]
        return ((pc >> 2) ^ (pc >> (2 + log2)) ^ self._index_folds[table].value) \
            & ((1 << log2) - 1)

    def _tag(self, table, pc):
        bits = self.config.tag_bits[table]
        return ((pc >> 2) ^ (self._tag_folds[table].value << 1)) & ((1 << bits) - 1)

    # -- prediction ---------------------------------------------------------------
    def predict(self, pc):
        """Look up *pc* under the current global branch history."""
        self.stat_lookups += 1
        provider = -1
        provider_index = -1
        pc2 = pc >> 2
        log2s = self._log2s
        idx_masks = self._idx_masks
        tag_masks = self._tag_masks
        index_folds = self._index_folds
        tag_folds = self._tag_folds
        tbl_tags = self._tbl_tags
        tbl_valid = self._tbl_valid
        for table in range(len(tbl_tags) - 1, -1, -1):
            # Inlined _index/_tag (this loop dominates the lookup cost).
            index = (pc2 ^ (pc2 >> log2s[table])
                     ^ index_folds[table].value) & idx_masks[table]
            if tbl_valid[table][index] and tbl_tags[table][index] == \
                    (pc2 ^ (tag_folds[table].value << 1)) & tag_masks[table]:
                provider, provider_index = table, index
                break
        if provider < 0:
            index = self._base_index(pc)
            if not (self._base_valid[index]
                    and self._base_tags[index] == self._base_tag(pc)):
                return Prediction(None, False, (-2, index))
            provider_index = index
            value_field = self._base_values[index]
            confidence = self._base_conf[index]
        else:
            value_field = self._tbl_values[provider][provider_index]
            confidence = self._tbl_conf[provider][provider_index]
        value = decode_value_field(value_field, self.config.value_bits)
        confident = self._fpc.is_confident(confidence)
        if confident:
            self.stat_confident += 1
        return Prediction(value, confident, (provider, provider_index))

    # -- training -----------------------------------------------------------------
    def train(self, pc, actual_value, info):
        """Retire-time update with the architecturally correct value.

        *info* is the tuple returned by the paired ``predict``; the indices
        it contains are reused verbatim (the FIFO-carried state).
        """
        provider, provider_index = info
        field_value = encode_value_field(actual_value, self.config.value_bits)
        mispredicted_confident = False
        if provider == -2:
            # Base-table miss: allocate the base entry (LVP behaviour).
            self._base_tags[provider_index] = self._base_tag(pc)
            self._base_values[provider_index] = field_value
            self._base_conf[provider_index] = 0
            self._base_valid[provider_index] = 1
        else:
            if provider < 0:
                values, conf = self._base_values, self._base_conf
                useful = None  # the base table has no useful field
            else:
                values = self._tbl_values[provider]
                conf = self._tbl_conf[provider]
                useful = self._tbl_useful[provider]
            predicted = decode_value_field(values[provider_index],
                                           self.config.value_bits)
            if predicted == actual_value:
                self.stat_correct_trained += 1
                conf[provider_index] = self._fpc.increment(conf[provider_index])
                if useful is not None and \
                        self._fpc.is_confident(conf[provider_index]):
                    useful[provider_index] = min(
                        useful[provider_index] + 1,
                        (1 << self.config.useful_bits) - 1)
            else:
                self.stat_incorrect_trained += 1
                mispredicted_confident = self._fpc.is_confident(conf[provider_index])
                if conf[provider_index] == 0:
                    values[provider_index] = field_value
                conf[provider_index] = 0
                if useful is not None and useful[provider_index]:
                    useful[provider_index] -= 1
                self._allocate(pc, field_value, provider)
        self._trainings += 1
        if self._trainings % self.config.useful_reset_period == 0:
            self._reset_useful()
        return mispredicted_confident

    def _allocate(self, pc, field_value, provider):
        """On a wrong value, try to steal an entry in a longer table."""
        start = provider + 1
        for table in range(max(start, 0), self.config.n_tagged):
            index = self._index(table, pc)
            if self._tbl_useful[table][index] == 0:
                if not self._rng.chance(2) and table < self.config.n_tagged - 1:
                    continue  # probabilistic skip spreads allocations out
                self._tbl_tags[table][index] = self._tag(table, pc)
                self._tbl_values[table][index] = field_value
                self._tbl_conf[table][index] = 0
                self._tbl_useful[table][index] = 0
                self._tbl_valid[table][index] = 1
                return
        for table in range(max(start, 0), self.config.n_tagged):
            useful = self._tbl_useful[table]
            index = self._index(table, pc)
            if useful[index]:
                useful[index] -= 1

    def _reset_useful(self):
        self._tbl_useful = [bytearray(value >> 1 for value in useful)
                            for useful in self._tbl_useful]
