"""The VP-tracking FIFO.

The paper (§3.3) tracks in-flight value predictions in a dedicated FIFO
rather than the ROB: an entry is pushed when a prediction is made at
rename, marked at execute when the functional unit compares its result
against the predicted value (which, under TVP, *is* the physical
destination register name), and popped at retire to train the predictor.
On a pipeline flush, entries belonging to squashed µops are abandoned.

The FIFO also implements *silencing* (§3.4.1): after a value mispredict,
predictions keep flowing for training but are not used by the pipeline for
``silence_cycles`` cycles — the livelock-avoidance mechanism.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass(slots=True)
class InflightPrediction:
    """One in-flight value prediction."""

    seq: int                  # µop sequence number (trace identity)
    pc: int
    predicted: int            # full 64-bit predicted value
    info: tuple               # predictor-internal provider state
    used: bool                # installed into the rename stream?
    correct: Optional[bool] = None  # set at execute-time validation


class VPQueue:
    """Bounded FIFO of :class:`InflightPrediction` keyed by µop seq."""

    def __init__(self, capacity=192, silence_cycles=250):
        self.capacity = capacity
        self.silence_cycles = silence_cycles
        self._entries = {}
        self._silenced_until = -1
        # Statistics.
        self.stat_pushed = 0
        self.stat_full_rejections = 0
        self.stat_silenced_suppressions = 0

    def __len__(self):
        return len(self._entries)

    @property
    def full(self):
        return len(self._entries) >= self.capacity

    def is_silenced(self, cycle):
        """True while the pipeline must ignore confident predictions."""
        return cycle < self._silenced_until

    def silence(self, cycle):
        """Start (or extend) a silencing window at *cycle*."""
        self._silenced_until = max(self._silenced_until,
                                   cycle + self.silence_cycles)

    def note_suppressed(self):
        """Count a confident prediction dropped due to silencing."""
        self.stat_silenced_suppressions += 1

    def push(self, seq, pc, predicted, info, used):
        """Track a prediction; returns False when the FIFO is full."""
        if self.full:
            self.stat_full_rejections += 1
            return False
        self._entries[seq] = InflightPrediction(seq, pc, predicted, info, used)
        self.stat_pushed += 1
        return True

    def get(self, seq):
        return self._entries.get(seq)

    def validate(self, seq, actual):
        """Execute-time comparison; returns the entry (or None)."""
        entry = self._entries.get(seq)
        if entry is not None:
            entry.correct = entry.predicted == actual
        return entry

    def pop(self, seq):
        """Retire-time removal; returns the entry for training."""
        return self._entries.pop(seq, None)

    def squash_younger(self, seq_inclusive):
        """Drop entries for µops with seq >= *seq_inclusive* (flush).

        Returns the dropped entries so predictors with speculative state
        (e.g. the stride predictor's in-flight counters) can be repaired.
        """
        doomed = [entry for seq, entry in self._entries.items()
                  if seq >= seq_inclusive]
        for entry in doomed:
            del self._entries[entry.seq]
        return doomed
