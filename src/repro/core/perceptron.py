"""Perceptron-based Minimal Value Prediction.

The paper (§7): "MVP is especially interesting as it can also leverage
branch prediction algorithms such as perceptron [Jiménez & Lin]".  With
only two candidate values, predicting *the value* collapses into two
binary questions over global branch history:

* will this instruction produce a usual-suspect value (0x0 or 0x1)?
* if so, which one?

We answer both with one perceptron table per question, hashed by PC, dot-
producting signed weights against the recent global history.  Confidence
is the classic |sum| >= theta margin, with theta sized so accuracy stays
in the >99.9% regime the paper's FPC scheme achieves.
"""

from dataclasses import dataclass

from repro.core.vtage import Prediction


@dataclass
class PerceptronVpConfig:
    """Geometry of the perceptron MVP predictor."""

    history_bits: int = 32
    log2_entries: int = 9
    weight_bits: int = 8
    theta: int = 96        # use-threshold: high = conservative (paper-like)

    @property
    def storage_bits(self):
        # Two perceptron tables (hit + which-value).
        per_row = (self.history_bits + 1) * self.weight_bits
        return 2 * (1 << self.log2_entries) * per_row


class _PerceptronTable:
    def __init__(self, config):
        self.config = config
        rows = 1 << config.log2_entries
        self._weights = [[0] * (config.history_bits + 1) for _ in range(rows)]
        self._limit = (1 << (config.weight_bits - 1)) - 1

    def _row(self, pc):
        return self._weights[(pc >> 2) % len(self._weights)]

    def dot(self, pc, history_bits):
        row = self._row(pc)
        total = row[0]
        for i in range(self.config.history_bits):
            bit = (history_bits >> i) & 1
            total += row[i + 1] if bit else -row[i + 1]
        return total

    def train(self, pc, history_bits, target, total):
        """Classic perceptron update on mispredict or weak margin."""
        if (total >= 0) == (target > 0) and abs(total) > self.config.theta:
            return
        row = self._row(pc)
        limit = self._limit
        row[0] = max(-limit, min(limit, row[0] + target))
        for i in range(self.config.history_bits):
            bit = (history_bits >> i) & 1
            delta = target if bit else -target
            row[i + 1] = max(-limit, min(limit, row[i + 1] + delta))


class PerceptronValuePredictor:
    """MVP-only predictor; predict/train interface as VTAGE's."""

    def __init__(self, config=None, history=None, seed=0):
        from repro.frontend.history import GlobalHistory

        self.config = config or PerceptronVpConfig()
        self.history = history if history is not None else GlobalHistory()
        self._is_usual = _PerceptronTable(self.config)   # produces 0/1?
        self._which = _PerceptronTable(self.config)      # 0x1 vs 0x0
        self.stat_lookups = 0
        self.stat_confident = 0
        self.stat_correct_trained = 0
        self.stat_incorrect_trained = 0

    def _history_bits(self):
        return self.history.recent_bits(self.config.history_bits)

    def predict(self, pc):
        self.stat_lookups += 1
        bits = self._history_bits()
        usual = self._is_usual.dot(pc, bits)
        which = self._which.dot(pc, bits)
        theta = self.config.theta
        confident = usual > theta and abs(which) > theta
        value = 1 if which >= 0 else 0
        if confident:
            self.stat_confident += 1
        return Prediction(value, confident, (bits, usual, which))

    def train(self, pc, actual_value, info):
        bits, usual, which = info
        is_usual = actual_value in (0, 1)
        self._is_usual.train(pc, bits, 1 if is_usual else -1, usual)
        predicted_value = 1 if which >= 0 else 0
        confident = usual > self.config.theta and abs(which) > self.config.theta
        if is_usual:
            self._which.train(pc, bits, 1 if actual_value == 1 else -1, which)
            correct = predicted_value == actual_value
        else:
            correct = False
        if correct:
            self.stat_correct_trained += 1
        else:
            self.stat_incorrect_trained += 1
        return confident and not correct
