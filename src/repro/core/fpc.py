"""Forward Probabilistic Counters (Riley & Zilles; Perais & Seznec).

A k-bit FPC emulates a much wider saturating counter: each increment
*request* only succeeds with a per-level probability.  The paper uses 3-bit
FPCs with a 1/16 acceptance probability, which makes a predictor entry
require on the order of ~100 consecutive correct outcomes before its
prediction is deemed confident — the source of the >99.9% accuracy the
paper reports.
"""

from repro.util.rng import XorShift64


class ForwardProbabilisticCounter:
    """Shared policy object: probabilistic increment / hard reset."""

    def __init__(self, bits=3, one_in=16, rng=None):
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.one_in = one_in
        self._rng = rng or XorShift64()

    def increment(self, value):
        """Request an increment of *value*; returns the new value.

        The first step (0 -> 1) always succeeds; later steps succeed with
        probability ``1/one_in`` (the paper's 1/16).
        """
        if value >= self.max_value:
            return value
        if value == 0 or self._rng.chance(self.one_in):
            return value + 1
        return value

    def is_confident(self, value):
        """Predictions are used only at full saturation."""
        return value >= self.max_value

    def reset(self, _value=None):
        """Counters drop to zero on any misprediction."""
        return 0
