"""Last Value Predictor (Lipasti et al., 1996) — a swap-in alternative.

The paper (§7) notes that "there exist many variations of value predictors
that could be swapped in to implement MVP/TVP".  LVP is the simplest: a
tagged, PC-indexed table of last values with FPC confidence.  It has no
history sensitivity, so it captures strictly the *constant* subset of what
VTAGE captures — the ablation benchmark quantifies the gap.
"""

from dataclasses import dataclass

from repro.core.fpc import ForwardProbabilisticCounter
from repro.core.modes import decode_value_field, encode_value_field
from repro.core.vtage import Prediction
from repro.util.rng import XorShift64


@dataclass
class LvpConfig:
    """Geometry of a last-value predictor."""

    value_bits: int = 64
    log2_entries: int = 13
    tag_bits: int = 10
    confidence_bits: int = 3
    fpc_one_in: int = 16

    @property
    def storage_bits(self):
        per_entry = self.tag_bits + self.value_bits + self.confidence_bits
        return (1 << self.log2_entries) * per_entry


class _Entry:
    __slots__ = ("tag", "value_field", "confidence", "valid")

    def __init__(self):
        self.tag = 0
        self.value_field = 0
        self.confidence = 0
        self.valid = False


class LastValuePredictor:
    """Same predict/train interface as :class:`~repro.core.vtage.Vtage`."""

    def __init__(self, config=None, history=None, seed=0x1A57_0001):
        self.config = config or LvpConfig()
        self.history = history  # unused: LVP is history-blind
        self._fpc = ForwardProbabilisticCounter(
            self.config.confidence_bits, self.config.fpc_one_in,
            XorShift64(seed))
        self._table = [_Entry() for _ in range(1 << self.config.log2_entries)]
        self.stat_lookups = 0
        self.stat_confident = 0
        self.stat_correct_trained = 0
        self.stat_incorrect_trained = 0

    def _index_tag(self, pc):
        index = (pc >> 2) & ((1 << self.config.log2_entries) - 1)
        tag = (pc >> (2 + self.config.log2_entries)) \
            & ((1 << self.config.tag_bits) - 1)
        return index, tag

    def predict(self, pc):
        self.stat_lookups += 1
        index, tag = self._index_tag(pc)
        entry = self._table[index]
        if not (entry.valid and entry.tag == tag):
            return Prediction(None, False, (index,))
        value = decode_value_field(entry.value_field, self.config.value_bits)
        confident = self._fpc.is_confident(entry.confidence)
        if confident:
            self.stat_confident += 1
        return Prediction(value, confident, (index,))

    def train(self, pc, actual_value, info):
        (index,) = info
        _, tag = self._index_tag(pc)
        entry = self._table[index]
        field = encode_value_field(actual_value, self.config.value_bits)
        if not (entry.valid and entry.tag == tag):
            entry.tag = tag
            entry.value_field = field
            entry.confidence = 0
            entry.valid = True
            return False
        predicted = decode_value_field(entry.value_field,
                                       self.config.value_bits)
        if predicted == actual_value:
            self.stat_correct_trained += 1
            entry.confidence = self._fpc.increment(entry.confidence)
            return False
        self.stat_incorrect_trained += 1
        was_confident = self._fpc.is_confident(entry.confidence)
        if entry.confidence == 0:
            entry.value_field = field
        entry.confidence = 0
        return was_confident
