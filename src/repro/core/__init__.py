"""The paper's primary contribution: targeted value prediction and SpSR.

* :mod:`repro.core.modes`    — MVP / TVP / GVP flavor definitions
* :mod:`repro.core.fpc`      — Forward Probabilistic Counters
* :mod:`repro.core.vtage`    — the VTAGE value predictor
* :mod:`repro.core.storage`  — bit-exact predictor storage model (Table 2)
* :mod:`repro.core.inflight` — the VP-tracking FIFO
* :mod:`repro.core.spsr`     — Speculative Strength Reduction (Table 1)
"""

from repro.core.fpc import ForwardProbabilisticCounter
from repro.core.inflight import InflightPrediction, VPQueue
from repro.core.modes import VPFlavor
from repro.core.spsr import ReductionKind, SpSREngine, SpSRResult
from repro.core.storage import vtage_storage_bits, vtage_storage_kb
from repro.core.vtage import Vtage, VtageConfig

__all__ = [
    "ForwardProbabilisticCounter",
    "InflightPrediction",
    "ReductionKind",
    "SpSREngine",
    "SpSRResult",
    "VPFlavor",
    "VPQueue",
    "Vtage",
    "VtageConfig",
    "vtage_storage_bits",
    "vtage_storage_kb",
]
