"""Speculative Strength Reduction (the paper's §4, Table 1).

At rename, when a source operand's physical register *name* is a known
small value — because its producer was value predicted (MVP/TVP/GVP),
0/1-idiom eliminated, 9-bit-idiom eliminated, or itself SpSR'd — specific
instructions can be strength-reduced and disappear from the backend:

* ``add x0, x0, x1`` with ``x1 == 0x0``      -> move-idiom (ME handles it)
* ``and x0, x1, x2`` with either source 0x0  -> zero-idiom
* ``ands``/``subs``/``adds``/``cmp`` with all inputs known -> nop + known
  NZCV deposited in a *frontend flags register* (hardwired NZCV physical
  registers are assumed in the backend, per the paper's footnote 4)
* ``cbz``/``tbz`` with a known source, ``b.cond``/``csel``/``csinc``/
  ``csneg`` with known NZCV -> resolved/reduced at rename.

The engine is purely combinational: given a µop and the known values of its
operands (``None`` when unknown), it returns what the renamer should do.
ARMv8 is the nice case (§4.2): the reduced instructions here have no side
effects beyond the flags we track, so every reduction is a *full*
elimination.

``constant_folding=True`` additionally enables the natural generalization
(an extension the paper leaves on the table): folding *any* ALU µop whose
source values are all known — used by the ablation benchmark.
"""

import enum
from dataclasses import dataclass
from typing import Optional

from repro.isa.bits import mask
from repro.isa.condition import condition_holds
from repro.isa.opcodes import Op
from repro.isa.semantics import branch_taken, compute_int, compute_movk, compute_unary


class ReductionKind(enum.Enum):
    """What the renamer should do with a reduced µop."""

    VALUE = "value"    # destination renamed to a known value (0/1/inline)
    MOVE = "move"      # destination renamed to a source's physical name
    BRANCH = "branch"  # branch direction resolved at rename


@dataclass
class SpSRResult:
    """A strength reduction decision."""

    kind: ReductionKind
    value: Optional[int] = None      # known result (VALUE), 64-bit unsigned
    flags: Optional[int] = None      # known NZCV produced (nop+NZCV rows)
    move_src: Optional[int] = None   # positional index of the moved source
    taken: Optional[bool] = None     # resolved branch direction


_SHIFTS = frozenset({Op.LSL, Op.LSR, Op.ASR})
_ADD_LIKE = frozenset({Op.ADD, Op.ORR, Op.EOR})
_FLAG_SETTERS = frozenset({Op.ADDS, Op.SUBS, Op.ANDS, Op.CMP, Op.CMN, Op.TST})
_FOLDABLE = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.ORR, Op.EOR, Op.BIC, Op.LSL, Op.LSR, Op.ASR,
    Op.MUL,
})


# Ops ``reduce`` can fire on regardless of destination: flag setters,
# conditional branches and conditional selects.
_STATIC_ALWAYS = _FLAG_SETTERS | frozenset({
    Op.CBZ, Op.CBNZ, Op.TBZ, Op.TBNZ, Op.B_COND,
    Op.CSEL, Op.CSINC, Op.CSNEG, Op.CSET,
})
# Data-processing ops with a Table 1 row (need a GPR destination).
_STATIC_DST = frozenset({
    Op.ADD, Op.ORR, Op.EOR, Op.SUB, Op.AND, Op.LSL, Op.LSR, Op.ASR,
    Op.UBFM, Op.SBFM, Op.RBIT, Op.BIC,
})
# Ops only reducible under the constant-folding extension.
_STATIC_FOLD_ONLY = frozenset({Op.MOVK, Op.CLZ, Op.MUL})


def statically_reducible(op, has_dst=True, constant_folding=False):
    """Pure static SpSR eligibility: could :meth:`SpSREngine.reduce` ever
    return a reduction for a µop with this opcode?

    This is the offline upper bound the opportunity analysis and the
    runtime elimination audit are built on: for every µop and every
    assignment of rename-time-known operand values, ``reduce`` returning
    non-``None`` implies this predicate holds.  The converse is not
    required (eligibility is an upper bound, not a promise).
    """
    if op in _STATIC_ALWAYS:
        return True
    if not has_dst:
        return False
    if op in _STATIC_DST:
        return True
    return constant_folding and op in _STATIC_FOLD_ONLY


class SpSREngine:
    """Combinational Table 1 matcher.

    ``reduce`` inspects one µop with the rename-time knowledge of its
    operands and returns an :class:`SpSRResult` or ``None``.  The renamer
    remains responsible for checking that a VALUE result is *encodable*
    under the active VP flavor (hardwired 0/1 for MVP, int9 inlining for
    TVP/GVP) before applying the reduction.
    """

    def __init__(self, constant_folding=False):
        self.constant_folding = constant_folding

    # -- public entry point -------------------------------------------------------
    def reduce(self, uop, known, known_flags):
        """*known*: tuple of Optional[int], one per ``uop.src_regs`` entry
        (the xzr entries must already be 0); *known_flags*: the frontend
        NZCV register value or ``None``."""
        op = uop.op
        if op in _FLAG_SETTERS:
            return self._flag_setter(uop, known)
        if op in (Op.CBZ, Op.CBNZ, Op.TBZ, Op.TBNZ):
            if known and known[0] is not None:
                taken = branch_taken(op, None, 0, known[0], uop.imm2 or 0)
                return SpSRResult(ReductionKind.BRANCH, taken=taken)
            return None
        if op is Op.B_COND:
            if known_flags is not None:
                taken = condition_holds(uop.cond, known_flags)
                return SpSRResult(ReductionKind.BRANCH, taken=taken)
            return None
        if op in (Op.CSEL, Op.CSINC, Op.CSNEG, Op.CSET):
            return self._conditional_select(uop, known, known_flags)
        if uop.dst is None:
            return None
        return self._data_processing(uop, known)

    # -- data processing (Table 1 upper rows) --------------------------------------
    def _operands(self, uop, known):
        """Resolve (a, b, b_is_imm): b folds in the immediate or the shifted
        second register source; unknown values stay None."""
        a = known[0] if known else None
        if len(uop.src_regs) >= 2:
            b = known[1]
            if b is not None and uop.imm2:
                b = mask(b << uop.imm2, uop.width)
            return a, b, False
        return a, uop.imm, True

    def _data_processing(self, uop, known):
        op = uop.op
        width = uop.width
        a, b, b_is_imm = self._operands(uop, known)

        if op in _ADD_LIKE:
            # add/orr/eor dst, src0, #1 : one-idiom when src0 == 0.
            if b_is_imm and a == 0 and b == 1:
                return SpSRResult(ReductionKind.VALUE, value=1)
            if not b_is_imm and a == 0:
                # x OP 0 == x for add/orr/eor: dst takes src1's name
                # (unless src1 carries a shift, in which case we need its
                # value to fold the shifted result).
                if not uop.imm2:
                    return SpSRResult(ReductionKind.MOVE, move_src=1)
                if b is not None:
                    return SpSRResult(ReductionKind.VALUE, value=b)
            if not b_is_imm and b == 0:
                return SpSRResult(ReductionKind.MOVE, move_src=0)
            return self._fold(uop, a, b)

        if op is Op.SUB:
            if b == 1 and a == 1:
                return SpSRResult(ReductionKind.VALUE, value=0)
            if b == 0 and not b_is_imm:
                return SpSRResult(ReductionKind.MOVE, move_src=0)
            return self._fold(uop, a, b)

        if op is Op.AND:
            if a == 0 or b == 0:
                return SpSRResult(ReductionKind.VALUE, value=0)
            if b == 1 and a == 1:
                return SpSRResult(ReductionKind.VALUE, value=1)
            return self._fold(uop, a, b)

        if op in _SHIFTS:
            if a == 0:
                return SpSRResult(ReductionKind.VALUE, value=0)
            if not b_is_imm and b == 0:
                return SpSRResult(ReductionKind.MOVE, move_src=0)
            return self._fold(uop, a, b)

        if op in (Op.UBFM, Op.SBFM, Op.RBIT):
            if known and known[0] == 0:
                return SpSRResult(ReductionKind.VALUE, value=0)
            if self.constant_folding and known and known[0] is not None:
                value = compute_unary(op, known[0], width,
                                      immr=uop.imm, imms=uop.imm2)
                return SpSRResult(ReductionKind.VALUE, value=value)
            return None

        if op is Op.BIC:
            if a == 0:
                return SpSRResult(ReductionKind.VALUE, value=0)
            if not b_is_imm and b == 0:
                return SpSRResult(ReductionKind.MOVE, move_src=0)
            return None

        if op is Op.MOVK and self.constant_folding and known and known[0] is not None:
            value = compute_movk(known[0], uop.imm, uop.imm2 or 0, width)
            return SpSRResult(ReductionKind.VALUE, value=value)

        if self.constant_folding and op is Op.CLZ and known and known[0] is not None:
            value = compute_unary(op, known[0], width)
            return SpSRResult(ReductionKind.VALUE, value=value)

        if op is Op.MUL and self.constant_folding:
            if a == 0 or b == 0:
                return SpSRResult(ReductionKind.VALUE, value=0)
            if b == 1 and not b_is_imm:
                return SpSRResult(ReductionKind.MOVE, move_src=0)
            if a == 1:
                return SpSRResult(ReductionKind.MOVE, move_src=1)

        return self._fold(uop, a, b)

    def _fold(self, uop, a, b):
        """Optional extension: full constant folding of known operands."""
        if not self.constant_folding or uop.op not in _FOLDABLE:
            return None
        if a is None or b is None:
            return None
        value, _ = compute_int(uop.op, a, b, uop.width)
        return SpSRResult(ReductionKind.VALUE, value=value)

    # -- flag setters (nop + NZCV rows) ---------------------------------------------
    def _flag_setter(self, uop, known):
        a, b, _b_is_imm = self._operands(uop, known)
        op = uop.op
        # ands with *either* source known-zero: result and flags both known.
        if op in (Op.ANDS, Op.TST) and (a == 0 or b == 0):
            value, flags = compute_int(Op.ANDS, 0, 0, uop.width)
            return SpSRResult(ReductionKind.VALUE, value=value, flags=flags)
        if a is None or b is None:
            return None
        value, flags = compute_int(op, a, b, uop.width)
        if op in (Op.CMP, Op.CMN, Op.TST) or uop.dst is None:
            return SpSRResult(ReductionKind.VALUE, value=None, flags=flags)
        return SpSRResult(ReductionKind.VALUE, value=value, flags=flags)

    # -- conditional selects ------------------------------------------------------------
    def _conditional_select(self, uop, known, known_flags):
        if known_flags is None:
            return None
        op = uop.op
        holds = condition_holds(uop.cond, known_flags)
        if op is Op.CSET:
            return SpSRResult(ReductionKind.VALUE, value=1 if holds else 0)
        if holds:
            return SpSRResult(ReductionKind.MOVE, move_src=0)
        if op is Op.CSEL:
            return SpSRResult(ReductionKind.MOVE, move_src=1)
        # csinc/csneg with the condition false compute src1+1 / -src1:
        # only reducible when that source is known (extension beyond the
        # paper's "cond is true" rows).
        if self.constant_folding and len(known) > 1 and known[1] is not None:
            b = known[1]
            if op is Op.CSINC:
                return SpSRResult(ReductionKind.VALUE, value=mask(b + 1, uop.width))
            if op is Op.CSNEG:
                return SpSRResult(ReductionKind.VALUE, value=mask(-b, uop.width))
        return None
