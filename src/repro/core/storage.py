"""Bit-exact VTAGE storage accounting (reproduces Table 2's KB figures).

Per-entry cost:

* base table entry:   tag(4) + value(W) + confidence(3)          [no useful]
* tagged table entry: tag(T) + value(W) + confidence(3) + useful(2)

With the paper's geometry (2^12 base; tagged 2^9,9,8,8,8,7,7 with tags
9,9,10,10,11,11,12) this yields **55.2 KB** at W=64 (GVP), **13.9 KB** at
W=9 (TVP) and **7.9 KB** at W=1 (MVP) — exactly the numbers in Table 2,
which is the repo's calibration check for this model
(`tests/core/test_storage.py`).
"""

from repro.core.vtage import VtageConfig


def vtage_storage_bits(config):
    """Total predictor storage in bits for a :class:`VtageConfig`."""
    bits = (1 << config.base_log2) * (
        config.base_tag_bits + config.value_bits + config.confidence_bits)
    for log2, tag in zip(config.tagged_log2, config.tag_bits):
        bits += (1 << log2) * (
            tag + config.value_bits + config.confidence_bits + config.useful_bits)
    return bits


def vtage_storage_kb(config):
    """Storage in kilobytes (1 KB = 1024 bytes), as the paper reports it."""
    return vtage_storage_bits(config) / 8.0 / 1024.0


def flavor_config(flavor, log2_delta=0):
    """The Table 2 predictor for a flavor, optionally size-scaled (Table 3)."""
    config = VtageConfig(value_bits=flavor.value_bits or 64)
    if log2_delta:
        config = config.scaled(log2_delta)
    return config
