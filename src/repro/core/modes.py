"""Value-prediction flavors: Minimal, Targeted and Generic VP.

The flavor decides (a) which values the predictor can *store* (its entry
width, hence its footprint), (b) which predictions the renamer can install
without a physical register, and (c) whether 9-bit signed-idiom elimination
of move-immediates is available (TVP/GVP only, as both rely on physical
register inlining).
"""

import enum

from repro.isa.bits import fits_signed


class VPFlavor(enum.Enum):
    """Which value-prediction infrastructure is built into the core."""

    NONE = "none"   # baseline: no value predictor at all
    MVP = "mvp"     # only 0x0 / 0x1, via hardwired physical registers
    TVP = "tvp"     # signed 9-bit values, via physical register inlining
    GVP = "gvp"     # any 64-bit value (inlined when it fits 9 bits)

    @property
    def value_bits(self):
        """Width of the value field in each predictor entry."""
        if self is VPFlavor.MVP:
            return 1
        if self is VPFlavor.TVP:
            return 9
        if self is VPFlavor.GVP:
            return 64
        return 0

    @property
    def enables_inlining(self):
        """True when physical register names may encode 9-bit values."""
        return self in (VPFlavor.TVP, VPFlavor.GVP)

    @property
    def enables_nine_bit_idiom(self):
        """9-bit signed integer-idiom elimination rides on inlining."""
        return self.enables_inlining

    def representable(self, value):
        """Can a prediction of *value* be installed at rename?

        MVP: only the two hardwired registers.  TVP: any signed 9-bit value.
        GVP: everything (wide values get a real physical register).
        """
        if self is VPFlavor.NONE:
            return False
        if self is VPFlavor.MVP:
            return value in (0, 1)
        if self is VPFlavor.TVP:
            return fits_signed(value, 9)
        return True

    def storable(self, value):
        """Can the *predictor entry* hold this value exactly?

        Same as :meth:`representable` for MVP/TVP; GVP entries are 64-bit so
        everything is storable.
        """
        return self.representable(value)

    def needs_physical_register(self, value):
        """True when installing the prediction consumes a physical register
        and a PRF write port (GVP with a value wider than 9 bits)."""
        return self is VPFlavor.GVP and not fits_signed(value, 9)


def encode_value_field(value, value_bits):
    """Truncate a 64-bit result to the predictor's value field."""
    return value & ((1 << value_bits) - 1)


def decode_value_field(field, value_bits):
    """Expand a stored field back to the full 64-bit predicted value.

    1-bit fields mean literally 0x0/0x1; 9-bit fields are sign-extended
    (physical register inlining carries signed 9-bit values); 64-bit fields
    are the value itself.
    """
    if value_bits >= 64:
        return field
    if value_bits == 1:
        return field
    signed = field - (1 << value_bits) if field >> (value_bits - 1) else field
    return signed & 0xFFFF_FFFF_FFFF_FFFF


def value_roundtrips(value, value_bits):
    """True when encode->decode reproduces *value* exactly."""
    if value_bits >= 64:
        return True
    if value_bits == 1:
        return value in (0, 1)
    return fits_signed(value, value_bits)
