"""Stride value predictor with speculative in-flight tracking.

Section 2.1 of the paper criticizes stride-style predictors precisely
because "many instances of the same instruction can be live at any given
time", forcing *speculative* state: a per-entry counter of live instances
to multiply the stride with.  We implement that machinery faithfully —
``predict`` bumps the in-flight count, ``train``/``abandon`` drop it — so
the ablation benchmark can weigh its (small) accuracy win against the
complexity the paper avoids.

Note the interaction with targeted flavors: a strided sequence rarely
stays inside 9 bits for long, so under MVP/TVP a stride predictor degrades
towards LVP — one of the reasons the paper calls stride "mostly
irrelevant" for MVP/TVP (§3.3).
"""

from dataclasses import dataclass

from repro.core.fpc import ForwardProbabilisticCounter
from repro.core.modes import decode_value_field, encode_value_field
from repro.core.vtage import Prediction
from repro.isa.bits import mask
from repro.util.rng import XorShift64


@dataclass
class StrideVpConfig:
    """Geometry of the stride value predictor."""

    value_bits: int = 64
    stride_bits: int = 16
    log2_entries: int = 12
    tag_bits: int = 10
    confidence_bits: int = 3
    fpc_one_in: int = 16

    @property
    def storage_bits(self):
        per_entry = (self.tag_bits + self.value_bits + self.stride_bits
                     + self.confidence_bits + 6)  # 6-bit inflight counter
        return (1 << self.log2_entries) * per_entry


class _Entry:
    __slots__ = ("tag", "last_field", "stride", "confidence", "inflight",
                 "valid")

    def __init__(self):
        self.tag = 0
        self.last_field = 0
        self.stride = 0
        self.confidence = 0
        self.inflight = 0
        self.valid = False


class StrideValuePredictor:
    """predict/train/abandon with per-entry speculative instance counts."""

    def __init__(self, config=None, history=None, seed=0x57D_0001):
        self.config = config or StrideVpConfig()
        self.history = history  # unused
        self._fpc = ForwardProbabilisticCounter(
            self.config.confidence_bits, self.config.fpc_one_in,
            XorShift64(seed))
        self._table = [_Entry() for _ in range(1 << self.config.log2_entries)]
        self.stat_lookups = 0
        self.stat_confident = 0
        self.stat_correct_trained = 0
        self.stat_incorrect_trained = 0

    def _index_tag(self, pc):
        index = (pc >> 2) & ((1 << self.config.log2_entries) - 1)
        tag = (pc >> (2 + self.config.log2_entries)) \
            & ((1 << self.config.tag_bits) - 1)
        return index, tag

    def _clamp_stride(self, stride):
        half = 1 << (self.config.stride_bits - 1)
        if -half <= stride < half:
            return stride
        return 0

    def predict(self, pc):
        """Prediction for the *next* instance: last + stride*(inflight+1)."""
        self.stat_lookups += 1
        index, tag = self._index_tag(pc)
        entry = self._table[index]
        if not (entry.valid and entry.tag == tag):
            return Prediction(None, False, (index, 0))
        last = decode_value_field(entry.last_field, self.config.value_bits)
        value = mask(last + entry.stride * (entry.inflight + 1), 64)
        confident = self._fpc.is_confident(entry.confidence)
        if confident:
            self.stat_confident += 1
        entry.inflight = min(entry.inflight + 1, 63)
        return Prediction(value, confident, (index, entry.inflight))

    def _retire_instance(self, entry):
        if entry.inflight > 0:
            entry.inflight -= 1

    def train(self, pc, actual_value, info):
        index, _snapshot = info
        _, tag = self._index_tag(pc)
        entry = self._table[index]
        self._retire_instance(entry)
        field = encode_value_field(actual_value, self.config.value_bits)
        if not (entry.valid and entry.tag == tag):
            entry.tag = tag
            entry.last_field = field
            entry.stride = 0
            entry.confidence = 0
            entry.inflight = 0
            entry.valid = True
            return False
        last = decode_value_field(entry.last_field, self.config.value_bits)
        predicted = mask(last + entry.stride, 64)
        observed_stride = self._clamp_stride(
            (actual_value - last + 2**63) % 2**64 - 2**63)
        was_confident = self._fpc.is_confident(entry.confidence)
        if predicted == actual_value:
            self.stat_correct_trained += 1
            entry.confidence = self._fpc.increment(entry.confidence)
        else:
            self.stat_incorrect_trained += 1
            entry.stride = observed_stride
            entry.confidence = 0
        entry.last_field = field
        return was_confident and predicted != actual_value

    def abandon(self, pc, info):
        """A squashed, never-validated instance leaves the window."""
        index, _ = info
        self._retire_instance(self._table[index])
