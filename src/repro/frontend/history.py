"""Global branch history with O(1) folded views (Seznec-style CSRs).

TAGE-like predictors hash very long histories (up to 640 bits here) into
table indices.  Folding the full history on every lookup would dominate
simulation time, so each (length, width) view is maintained incrementally as
a circular shift register updated once per history push.
"""

_RING_BITS = 2048


class FoldedHistory:
    """A *width*-bit fold of the most recent *length* history bits."""

    __slots__ = ("length", "width", "value", "_out_shift", "_mask")

    def __init__(self, length, width):
        self.length = length
        self.width = width
        self.value = 0
        self._out_shift = length % width
        self._mask = (1 << width) - 1

    def update(self, new_bit, old_bit):
        """Push *new_bit*, retire *old_bit* (the bit leaving the window)."""
        value = (self.value << 1) | new_bit
        value ^= old_bit << self._out_shift
        value ^= value >> self.width
        self.value = value & self._mask


class GlobalHistory:
    """Ring buffer of branch outcomes plus registered folded views.

    ``push(taken)`` is O(number of registered folds).  ``fold(...)`` returns
    a live :class:`FoldedHistory` whose ``value`` is always current.
    """

    def __init__(self):
        self._ring = bytearray(_RING_BITS)
        self._head = 0          # position of the *next* bit to write
        self._folds = []

    def fold(self, length, width):
        """Register (or reuse) a folded view of the last *length* bits."""
        if length >= _RING_BITS:
            raise ValueError(f"history length {length} exceeds ring capacity")
        for fold in self._folds:
            if fold.length == length and fold.width == width:
                return fold
        fold = FoldedHistory(length, width)
        self._folds.append(fold)
        return fold

    def push(self, taken):
        """Append one branch outcome and update every folded view."""
        ring = self._ring
        head = self._head
        new_bit = 1 if taken else 0
        for fold in self._folds:
            # fold.update(new_bit, old_bit), inlined: push() runs once per
            # branch over ~50 registered folds and dominates history cost.
            value = ((fold.value << 1) | new_bit) \
                ^ (ring[(head - fold.length) % _RING_BITS] << fold._out_shift)
            value ^= value >> fold.width
            fold.value = value & fold._mask
        ring[head] = new_bit
        self._head = (head + 1) % _RING_BITS

    def recent_bits(self, count):
        """The last *count* outcomes as an int (LSB = most recent)."""
        value = 0
        for i in range(count):
            value |= self._ring[(self._head - 1 - i) % _RING_BITS] << i
        return value
