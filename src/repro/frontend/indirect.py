"""Indirect Branch Target Cache: path-history-hashed target predictor.

1k entries per Table 2.  Indexed by PC xor a short path history of recent
taken-branch target bits, the classic ITTAGE-lite scheme.
"""


class IndirectTargetCache:
    """Direct-mapped target cache with a small path-history hash."""

    def __init__(self, entries=1024, path_bits=16):
        self.entries = entries
        self.path_bits = path_bits
        self._table = [None] * entries  # each entry: (tag, target)
        self._path = 0
        self.stat_hits = 0
        self.stat_misses = 0

    def _index_tag(self, pc):
        # Fold the whole path register into the low index bits (branch
        # targets are aligned, so without the fold the low bits carry no
        # path information at all).
        path = self._path ^ (self._path >> 8)
        hashed = (pc >> 2) ^ path
        tag = ((pc >> 2) ^ (self._path << 1)) & 0xFFFF
        return hashed % self.entries, tag

    def lookup(self, pc):
        """Predicted indirect target or ``None``."""
        index, tag = self._index_tag(pc)
        entry = self._table[index]
        if entry is not None and entry[0] == tag:
            self.stat_hits += 1
            return entry[1]
        self.stat_misses += 1
        return None

    def install(self, pc, target):
        index, tag = self._index_tag(pc)
        self._table[index] = (tag, target)

    def push_path(self, target):
        """Fold a taken-branch target into the path history."""
        self._path = ((self._path << 2) ^ (target >> 2)) & ((1 << self.path_bits) - 1)
