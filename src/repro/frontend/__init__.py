"""Frontend prediction structures: TAGE, BTB, RAS, indirect target cache."""

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.history import FoldedHistory, GlobalHistory
from repro.frontend.indirect import IndirectTargetCache
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import Tage, TageConfig

__all__ = [
    "BranchTargetBuffer",
    "FoldedHistory",
    "GlobalHistory",
    "IndirectTargetCache",
    "ReturnAddressStack",
    "Tage",
    "TageConfig",
]
