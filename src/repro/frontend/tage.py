"""TAGE conditional branch predictor (Seznec, "A new case for TAGE").

Configured per Table 2 of the paper: one bimodal base table plus 15 tagged
tables with geometric history lengths 5..640, ~32KB total.  The simulator
predicts and trains at fetch time with the correct outcome (trace-driven),
which keeps the global history identical to hardware on the correct path.
"""

from dataclasses import dataclass, field
from typing import List

from repro.util.rng import XorShift64
from repro.util.series import geometric_history_lengths


@dataclass
class TageConfig:
    """Geometry of a TAGE predictor."""

    n_tables: int = 15
    min_history: int = 5
    max_history: int = 640
    base_log2: int = 13                      # bimodal entries (2-bit each)
    tagged_log2: List[int] = field(default_factory=lambda: [10] * 15)
    tag_bits: List[int] = field(default_factory=lambda: list(range(8, 23)))
    counter_bits: int = 3
    useful_bits: int = 2
    useful_reset_period: int = 256 * 1024

    def __post_init__(self):
        if len(self.tagged_log2) != self.n_tables:
            raise ValueError("tagged_log2 must list one size per table")
        if len(self.tag_bits) != self.n_tables:
            raise ValueError("tag_bits must list one width per table")
        self.tag_bits = [min(b, 14) for b in self.tag_bits]

    @property
    def history_lengths(self):
        return geometric_history_lengths(self.min_history, self.max_history,
                                         self.n_tables)

    @property
    def storage_bits(self):
        """Total storage, for reporting against the paper's 32KB budget."""
        bits = (1 << self.base_log2) * 2
        entry_bits = [
            tag + self.counter_bits + self.useful_bits for tag in self.tag_bits
        ]
        for log2, per_entry in zip(self.tagged_log2, entry_bits):
            bits += (1 << log2) * per_entry
        return bits


class Tage:
    """The predictor.  ``predict`` and ``update`` must be called in pairs."""

    def __init__(self, config=None, history=None, seed=0xB5297A4D):
        from repro.frontend.history import GlobalHistory

        self.config = config or TageConfig()
        self.history = history if history is not None else GlobalHistory()
        self._rng = XorShift64(seed)
        cfg = self.config
        self.base = bytearray([2] * (1 << cfg.base_log2))  # weak not-taken
        # Tagged components as parallel arrays (tag / 0..7 counter, taken
        # when >= 4 / 0..3 useful) — far cheaper to build and index than
        # one object per entry.
        sizes = [1 << log2 for log2 in cfg.tagged_log2]
        self._tags = [[0] * size for size in sizes]
        self._counters = [bytearray(size) for size in sizes]
        self._useful = [bytearray(size) for size in sizes]
        lengths = cfg.history_lengths
        self._index_folds = [
            self.history.fold(length, log2)
            for length, log2 in zip(lengths, cfg.tagged_log2)
        ]
        self._tag_folds = [
            self.history.fold(length, tag_bits)
            for length, tag_bits in zip(lengths, cfg.tag_bits)
        ]
        self._tag_folds2 = [
            self.history.fold(length, max(tag_bits - 1, 1))
            for length, tag_bits in zip(lengths, cfg.tag_bits)
        ]
        self._branches_seen = 0
        self.stat_lookups = 0
        self.stat_mispredicts = 0

    # -- hashing ---------------------------------------------------------------
    def _index(self, table, pc):
        log2 = self.config.tagged_log2[table]
        fold = self._index_folds[table].value
        return (pc ^ (pc >> log2) ^ fold) & ((1 << log2) - 1)

    def _tag(self, table, pc):
        bits = self.config.tag_bits[table]
        tag = pc ^ self._tag_folds[table].value ^ (self._tag_folds2[table].value << 1)
        return tag & ((1 << bits) - 1)

    def _base_index(self, pc):
        return (pc >> 2) & ((1 << self.config.base_log2) - 1)

    # -- prediction --------------------------------------------------------------
    def predict(self, pc):
        """Returns ``(taken, info)``; pass *info* back to :meth:`update`."""
        self.stat_lookups += 1
        provider = -1
        provider_index = 0
        alt = -1
        alt_index = 0
        for table in range(self.config.n_tables - 1, -1, -1):
            index = self._index(table, pc)
            if self._tags[table][index] == self._tag(table, pc):
                if provider < 0:
                    provider, provider_index = table, index
                else:
                    alt, alt_index = table, index
                    break
        base_index = self._base_index(pc)
        base_taken = self.base[base_index] >= 2
        if provider >= 0:
            taken = self._counters[provider][provider_index] >= 4
            alt_taken = (self._counters[alt][alt_index] >= 4
                         if alt >= 0 else base_taken)
        else:
            taken = base_taken
            alt_taken = base_taken
        info = (provider, provider_index, alt, alt_index, base_index,
                taken, alt_taken)
        return taken, info

    # -- update -------------------------------------------------------------------
    def update(self, pc, taken, info):
        """Train with the true outcome and push it into global history."""
        provider, provider_index, alt, alt_index, base_index, predicted, alt_taken = info
        if predicted != taken:
            self.stat_mispredicts += 1
        if provider >= 0:
            self._update_counter(provider, provider_index, taken)
            if predicted != alt_taken:
                useful = self._useful[provider]
                useful[provider_index] = \
                    min(useful[provider_index] + 1, 3) if predicted == taken \
                    else max(useful[provider_index] - 1, 0)
            if alt < 0 and predicted != taken:
                # Also train base when the provider was wrong and no alt.
                self._update_base(base_index, taken)
        else:
            self._update_base(base_index, taken)
        if predicted != taken:
            self._allocate(pc, taken, provider)
        self._branches_seen += 1
        if self._branches_seen % self.config.useful_reset_period == 0:
            self._reset_useful()
        self.history.push(taken)

    def _update_counter(self, table, index, taken):
        counters = self._counters[table]
        if taken:
            counters[index] = min(counters[index] + 1, 7)
        else:
            counters[index] = max(counters[index] - 1, 0)

    def _update_base(self, base_index, taken):
        value = self.base[base_index]
        self.base[base_index] = min(value + 1, 3) if taken else max(value - 1, 0)

    def _allocate(self, pc, taken, provider):
        """Allocate one entry in a longer-history table on a mispredict."""
        start = provider + 1
        candidates = [
            table for table in range(start, self.config.n_tables)
            if self._useful[table][self._index(table, pc)] == 0
        ]
        if not candidates:
            for table in range(start, self.config.n_tables):
                useful = self._useful[table]
                index = self._index(table, pc)
                useful[index] = max(useful[index] - 1, 0)
            return
        # Prefer the shortest candidate, with some randomization (Seznec).
        choice = candidates[0]
        if len(candidates) > 1 and self._rng.chance(2):
            choice = candidates[1]
        index = self._index(choice, pc)
        self._tags[choice][index] = self._tag(choice, pc)
        self._counters[choice][index] = 4 if taken else 3
        self._useful[choice][index] = 0

    def _reset_useful(self):
        self._useful = [bytearray(value >> 1 for value in useful)
                        for useful in self._useful]

    @property
    def mispredict_rate(self):
        if self.stat_lookups == 0:
            return 0.0
        return self.stat_mispredicts / self.stat_lookups
