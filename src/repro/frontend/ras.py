"""Return Address Stack: a fixed-depth circular stack of call return PCs."""


class ReturnAddressStack:
    """Classic RAS; overflow wraps (oldest entries are silently lost)."""

    def __init__(self, depth=32):
        self.depth = depth
        self._stack = [0] * depth
        self._top = 0          # number of live entries, saturates at depth
        self._pos = 0          # circular write position
        self.stat_pushes = 0
        self.stat_pops = 0
        self.stat_underflows = 0

    @property
    def live_entries(self):
        """Current stack depth (sampled by the observability layer)."""
        return self._top

    def push(self, return_pc):
        self._stack[self._pos] = return_pc
        self._pos = (self._pos + 1) % self.depth
        self._top = min(self._top + 1, self.depth)
        self.stat_pushes += 1

    def pop(self):
        """Predicted return target, or ``None`` when the stack is empty."""
        self.stat_pops += 1
        if self._top == 0:
            self.stat_underflows += 1
            return None
        self._pos = (self._pos - 1) % self.depth
        self._top -= 1
        return self._stack[self._pos]
