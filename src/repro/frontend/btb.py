"""Branch Target Buffer: set-associative, LRU, stores taken targets.

A BTB miss on a taken branch means the frontend does not know the target at
fetch; the paper's pipeline detects this "mistarget" at Decode (Table 2),
costing a small redirect penalty that the fetch engine models.
"""


class BranchTargetBuffer:
    """*entries* total, *ways*-way set associative, true-LRU."""

    def __init__(self, entries=8192, ways=4):
        if entries % ways:
            raise ValueError("entries must be divisible by ways")
        self.sets = entries // ways
        self.ways = ways
        # Per set: list of [tag, target] in LRU order (front = MRU).
        self._data = [[] for _ in range(self.sets)]
        self.stat_hits = 0
        self.stat_misses = 0

    @property
    def fill(self):
        """Installed entries across all sets (observability sampling)."""
        return sum(len(ways) for ways in self._data)

    def _locate(self, pc):
        index = (pc >> 2) % self.sets
        tag = pc >> 2
        return self._data[index], tag

    def lookup(self, pc):
        """Predicted target for *pc*, or ``None`` on a BTB miss."""
        ways, tag = self._locate(pc)
        for position, way in enumerate(ways):
            if way[0] == tag:
                ways.insert(0, ways.pop(position))
                self.stat_hits += 1
                return way[1]
        self.stat_misses += 1
        return None

    def install(self, pc, target):
        """Insert/refresh the mapping pc -> target."""
        ways, tag = self._locate(pc)
        for position, way in enumerate(ways):
            if way[0] == tag:
                way[1] = target
                ways.insert(0, ways.pop(position))
                return
        ways.insert(0, [tag, target])
        if len(ways) > self.ways:
            ways.pop()
