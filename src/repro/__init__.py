"""Reproduction of "Leveraging Targeted Value Prediction to Unlock New
Hardware Strength Reduction Potential" (Perais, MICRO 2021).

Top-level convenience API::

    from repro import MachineConfig, assemble, simulate

    program = assemble("mov x0, #1\\nhlt")
    result = simulate(program, MachineConfig.tvp(spsr=True))
    print(result.stats.ipc)

For workload-level simulation and sweeps, use the stable facade in
:mod:`repro.api` (``api.simulate`` / ``api.sweep``) instead of driving
harness runners directly.

The subpackages follow the paper's system decomposition — see DESIGN.md:

* :mod:`repro.isa` / :mod:`repro.emulator` — the architectural substrate
* :mod:`repro.frontend` / :mod:`repro.backend` / :mod:`repro.memory` /
  :mod:`repro.rename` / :mod:`repro.pipeline` — the out-of-order core
* :mod:`repro.core` — the paper's contribution (MVP/TVP/GVP + SpSR)
* :mod:`repro.workloads` / :mod:`repro.harness` — evaluation
"""

from repro.isa.assembler import assemble
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import CpuModel, simulate

__version__ = "1.0.0"

__all__ = ["CpuModel", "MachineConfig", "__version__", "assemble", "simulate"]
