"""The rename stage: DSR (move/0/1/9-bit idiom elimination), SpSR and VP."""

from repro.rename.renamer import RenameOutcome, Renamer

__all__ = ["RenameOutcome", "Renamer"]
