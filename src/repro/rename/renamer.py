"""Rename-stage logic: where the whole paper happens.

Per µop, in priority order:

1. **Dynamic strength reduction (DSR)** — the baseline optimizations:
   move elimination (with the 64->32 width rule), zero/one-idiom
   elimination, and — under TVP/GVP — 9-bit signed-idiom elimination of
   move-immediates via physical register inlining.
2. **Speculative Strength Reduction** — Table 1 matching on rename-time
   known operand values (hardwired/inline source names, hardwired NZCV).
3. **Value prediction** — VTAGE lookup; confident predictions are
   installed by renaming the destination to a hardwired register (MVP), an
   inline value name (TVP / narrow GVP) or a freshly written physical
   register (wide GVP).  The µop still dispatches and executes so the
   functional unit can validate the prediction in place.
4. Plain renaming for whatever is left.

The renamer mutates the RAT/PRF and fills in the
:class:`~repro.backend.rob.RobEntry`; the pipeline core handles queues and
timing.
"""

from dataclasses import dataclass
from typing import Optional

from repro.backend.naming import (
    FLAGS_NAME_BASE,
    HARDWIRED_ONE,
    HARDWIRED_ZERO,
    encode_flag_inline,
    encode_inline,
    known_flags,
    known_value,
)
from repro.backend.prf import FreeListEmpty
from repro.backend.rob import UopState
from repro.core.modes import VPFlavor
from repro.core.spsr import ReductionKind, statically_reducible
from repro.isa.bits import fits_signed
from repro.isa.opcodes import ExecClass, Op
from repro.isa.registers import FLAGS, XZR

_MOVE_IDIOM_OPS = frozenset({Op.ADD, Op.ORR, Op.EOR})


def vp_eligible(uop):
    """The paper's eligibility rule: arithmetic and load µops that produce
    one (or more) general purpose register.  Precomputed per µop in
    :class:`~repro.emulator.trace.DynUop` — hot paths read ``uop.vp_elig``
    directly."""
    return uop.vp_elig


@dataclass
class RenameOutcome:
    """What the pipeline core needs to know after renaming one µop."""

    eliminated: bool = False
    resolved_branch_taken: Optional[bool] = None  # SpSR-resolved branch
    vp_used: bool = False


# Most µops rename plainly (no elimination, no prediction).  They all share
# one immutable outcome instance so the hot path skips the dataclass
# constructor; paths that set a flag build a fresh instance.
_PLAIN_OUTCOME = RenameOutcome()
_VP_OUTCOME = RenameOutcome(vp_used=True)


class Renamer:
    """The rename stage (see the module docstring for the full pipeline
    of decisions: DSR -> SpSR -> VP -> plain renaming)."""

    def __init__(self, config, rat, int_prf, fp_prf, flags_prf, stats,
                 spsr_engine=None, vtage=None, vp_queue=None):
        self.config = config
        self.rat = rat
        self.int_prf = int_prf
        self.fp_prf = fp_prf
        self.flags_prf = flags_prf
        self.stats = stats
        self.spsr = spsr_engine
        self.vtage = vtage
        self.vp_queue = vp_queue
        self.flavor = config.vp_flavor
        # Hot-path copies of immutable config switches (attribute chains
        # through the config dataclass dominate _dsr otherwise).
        self._en_zero_one = config.enable_zero_one_idiom
        self._en_nine_bit = config.enable_nine_bit_idiom
        self._en_move_elim = config.enable_move_elimination
        # name -> rename-time-known value (or None), precomputed over the
        # whole dense name space: the SpSR probe runs for every µop, and a
        # flat list index beats three range tests per source.
        self._known = [known_value(name) for name
                       in range(FLAGS_NAME_BASE + flags_prf.n_regs)]
        # Static SpSR eligibility by opcode (``statically_reducible`` is a
        # sound upper bound on ``SpSREngine.reduce``, cross-checked by the
        # elimination audit): µops outside these sets skip the known-value
        # gather and the Table 1 probe entirely.
        if spsr_engine is not None:
            fold = spsr_engine.constant_folding
            self._spsr_ops_dst = frozenset(
                op for op in Op
                if statically_reducible(op, has_dst=True,
                                        constant_folding=fold))
            self._spsr_ops_nodst = frozenset(
                op for op in Op
                if statically_reducible(op, has_dst=False,
                                        constant_folding=fold))
        # Filled by the pipeline with fetch-time predictions (seq -> Prediction).
        self.pending_predictions = {}

    # -- capacity pre-check (core calls this before committing to rename) -----------
    def can_rename(self, uop):
        """Conservatively: enough physical registers for the worst case."""
        if uop.dst is not None:
            prf = self.fp_prf if uop.dst_is_fp else self.int_prf
            if not prf.free_count:
                return False
        return not uop.writes_flags or self.flags_prf.free_count > 0

    # -- main entry point --------------------------------------------------------------
    def rename(self, entry, cycle, gate=7):
        """Rename one µop into *entry*; assumes :meth:`can_rename` passed.

        *gate* is a precomputed static-eligibility byte (bit 0: DSR may
        apply, bit 1: SpSR may apply, bit 2: VP may apply — see
        ``repro.pipeline.engine``): a clear bit is a proof the path
        returns nothing for this µop, so the call is skipped outright.
        The default enables every path — the reference behavior.
        """
        uop = entry.uop
        rat = self.rat
        # Source names resolve against the pre-update RAT (direct map
        # indexing: ``rat.lookup`` is just ``rat.spec[reg]``).
        spec = rat.spec
        entry.src_names = tuple(map(spec.__getitem__, uop.deps))

        if gate & 3:
            reduction = self._strength_reduce(entry, uop, cycle, gate)
            if reduction is not None:
                outcome = RenameOutcome()
                kind, payload = reduction
                self._apply_elimination(entry, uop, kind, payload, cycle,
                                        outcome)
                return outcome

        vp_used = gate & 4 and self._try_value_predict(entry, uop, cycle)
        if not vp_used and uop.dst is not None:
            self._allocate_dest(entry, uop)
        if uop.writes_flags:
            self._allocate_flags(entry)
        return _VP_OUTCOME if vp_used else _PLAIN_OUTCOME

    # -- strength reduction decision -------------------------------------------------
    def _strength_reduce(self, entry, uop, cycle, gate=3):
        """Returns ``(stat_kind, payload)`` or None.

        payload: ('value', value, flags|None) or ('move', src_index,
        flags|None) or ('branch', taken).
        """
        if gate & 1:
            dsr = self._dsr(entry, uop)
            if dsr is not None:
                return dsr
        if not gate & 2 or self.spsr is None:
            return None
        if uop.op not in (self._spsr_ops_dst if uop.dst is not None
                          else self._spsr_ops_nodst):
            return None
        spec = self.rat.spec
        table = self._known
        known = [table[spec[reg]] for reg in uop.src_regs]
        flags_known = None
        if uop.cond is not None or uop.op is Op.B_COND:
            flags_known = known_flags(spec[FLAGS])
        result = self.spsr.reduce(uop, known, flags_known)
        if result is None:
            return None
        if result.kind is ReductionKind.BRANCH:
            return ("spsr", ("branch", result.taken))
        if result.kind is ReductionKind.MOVE:
            src_reg = uop.src_regs[result.move_src]
            name = self.rat.lookup(src_reg)
            if not self._move_width_safe(name, uop.width):
                return None
            return ("spsr", ("move", result.move_src, result.flags))
        # VALUE: destination (if any) must be encodable under the flavor.
        if result.value is not None and uop.dst is not None:
            if not self._encodable(result.value):
                return None
        if result.flags is not None and not uop.writes_flags:
            return None
        return ("spsr", ("value", result.value, result.flags))

    def _encodable(self, value):
        if value in (0, 1):
            return True
        return self.flavor.enables_inlining and fits_signed(value, 9)

    # -- baseline DSR ------------------------------------------------------------------
    def _dsr(self, entry, uop):
        """Move elimination and 0/1/9-bit idiom elimination (gem5-style)."""
        op = uop.op
        if uop.dst is None:
            return None
        if op is Op.MOVZ:
            if self._en_zero_one and uop.imm == 0:
                return ("zero_idiom", ("value", 0, None))
            if self._en_zero_one and uop.imm == 1:
                return ("one_idiom", ("value", 1, None))
            if self._en_nine_bit and fits_signed(uop.imm, 9):
                return ("nine_bit_idiom", ("value", uop.imm, None))
            return None
        if op is Op.MOV and self._en_move_elim:
            return self._try_move(entry, uop, 0)
        if self._en_zero_one and op is Op.EOR \
                and len(uop.src_regs) == 2 \
                and uop.src_regs[0] == uop.src_regs[1] and not uop.imm2 \
                and uop.src_regs[0] != XZR:
            return ("zero_idiom", ("value", 0, None))
        if self._en_zero_one and op is Op.AND \
                and XZR in uop.src_regs:
            return ("zero_idiom", ("value", 0, None))
        if self._en_move_elim and op in _MOVE_IDIOM_OPS \
                and len(uop.src_regs) == 2 and XZR in uop.src_regs \
                and not uop.imm2:
            other = 1 if uop.src_regs[0] == XZR else 0
            if uop.src_regs[other] == XZR:   # both zero: eor covered above
                return ("zero_idiom", ("value", 0, None))
            return self._try_move(entry, uop, other)
        return None

    def _try_move(self, entry, uop, src_index):
        name = self.rat.lookup(uop.src_regs[src_index])
        if not self._move_width_safe(name, uop.width):
            entry.move_width_blocked = True   # counted at commit (Fig. 4)
            return None
        return ("move", ("move", src_index, None))

    def _move_width_safe(self, src_name, dst_width):
        """A move is fully eliminable unless a 64-bit-written register is
        moved into a 32-bit view (the upper half would leak).  Inline value
        names are safe when the value is non-negative (upper bits zero)."""
        if dst_width == 64:
            return True
        value = known_value(src_name)
        if value is not None:
            return 0 <= value < (1 << 32)
        return self.int_prf.width_of(src_name) == 32

    # -- applying an elimination --------------------------------------------------------
    def _apply_elimination(self, entry, uop, stat_kind, payload, cycle, outcome):
        entry.state = UopState.ELIMINATED
        entry.elim_kind = stat_kind
        entry.complete_cycle = cycle
        outcome.eliminated = True
        action = payload[0]
        if action == "branch":
            outcome.resolved_branch_taken = payload[1]
            return
        if action == "move":
            _action, src_index, flags = payload
            name = self.rat.lookup(uop.src_regs[src_index])
            self._map_dest(entry, uop, name)
            if flags is not None and uop.writes_flags:
                self._map_flags(entry, encode_flag_inline(flags))
            return
        _action, value, flags = payload
        if uop.dst is not None and value is not None:
            self._map_dest(entry, uop, self._encode(value))
        if flags is not None and uop.writes_flags:
            self._map_flags(entry, encode_flag_inline(flags))

    def _encode(self, value):
        if value == 0:
            return HARDWIRED_ZERO
        if value == 1:
            return HARDWIRED_ONE
        return encode_inline(value)

    # -- value prediction ---------------------------------------------------------------
    def _try_value_predict(self, entry, uop, cycle):
        """Returns True when a prediction was installed as the dest name."""
        if self.vtage is None or not uop.vp_elig:
            return False
        queue = self.vp_queue
        if queue.full:
            self.pending_predictions.pop(uop.seq, None)
            return False
        prediction = self.pending_predictions.pop(uop.seq, None)
        if prediction is None:
            prediction = self.vtage.predict(uop.pc)
        if not prediction.hit:
            queue.push(uop.seq, uop.pc, prediction.value, prediction.info,
                       used=False)
            return False
        usable = prediction.confident
        if usable and queue.is_silenced(cycle):
            queue.note_suppressed()
            usable = False
        if usable and not self.flavor.representable(prediction.value):
            self.stats.vp_not_representable += 1
            usable = False
        installed = False
        if usable:
            installed = self._install_prediction(entry, uop, prediction.value,
                                                 cycle)
        queue.push(uop.seq, uop.pc, prediction.value, prediction.info,
                   used=installed)
        if installed:
            entry.vp_used = True
            entry.vp_predicted = prediction.value
            if uop.is_load:
                # §3.6: a value-predicted load is marked load-acquire so
                # the ARMv8 memory model stays intact under multithreading
                # (no timing effect in this single-core model).
                self.stats.vp_loads_marked_acquire += 1
        return installed

    def _install_prediction(self, entry, uop, value, cycle):
        if self.flavor is VPFlavor.GVP and self.flavor.needs_physical_register(value):
            # Wide GVP prediction: a real register, written at rename.
            try:
                name = self.int_prf.alloc(cycle_ready=cycle + 1)
            except FreeListEmpty:
                return False
            self.int_prf.set_width(name, uop.width)
            self.stats.int_prf_writes += 1
            self.stats.vp_phys_reg_predictions += 1
            # alloc() granted one reference: that is the ROB entry's own,
            # dropped at commit/squash; rat.write adds the RAT's.
            prev = self.rat.write(uop.dst, name)
            entry.undo.append((uop.dst, prev, name))
            entry.dest_name = name
            return True
        self._map_dest(entry, uop, self._encode(value))
        return True

    # -- plain renaming -------------------------------------------------------------------
    def _allocate_dest(self, entry, uop):
        # alloc()'s reference is the ROB entry's own (dropped at
        # commit/squash); rat.write adds the speculative RAT's.
        prf = self.fp_prf if uop.dst_is_fp else self.int_prf
        name = prf.alloc()
        prf.set_width(name, uop.width)
        prev = self.rat.write(uop.dst, name)
        entry.undo.append((uop.dst, prev, name))
        entry.dest_name = name

    def _allocate_flags(self, entry):
        name = self.flags_prf.alloc()
        prev = self.rat.write(FLAGS, name)
        entry.undo.append((FLAGS, prev, name))
        entry.flags_name = name

    def _map_dest(self, entry, uop, name):
        """Point the destination at an existing/inline name."""
        self.int_prf.add_ref(name)  # the ROB entry's reference
        prev = self.rat.write(uop.dst, name)
        entry.undo.append((uop.dst, prev, name))
        entry.dest_name = name

    def _map_flags(self, entry, name):
        self.flags_prf.add_ref(name)  # no-op for hardwired-NZCV names
        prev = self.rat.write(FLAGS, name)
        entry.undo.append((FLAGS, prev, name))
        entry.flags_name = name
