"""The exploration engine: strategy loop, parallel evaluation, resume.

:class:`Explorer` ties the package together.  Each round it asks the
strategy for a batch of space-point indices, evaluates the whole batch
(in parallel when ``jobs > 1``), journals every finished point, and
feeds the results back before the next ``propose()`` — a barrier that
makes the search trajectory a pure function of (space, strategy, seed),
independent of worker count or scheduling.

Every evaluated point resolves through a strict source ladder, cheapest
first:

1. the **exploration journal** (a resumed run replays completed points
   and write-throughs their stats into the simulation cache),
2. the **simulation cache** (space points compile to plain
   :class:`~repro.pipeline.config.MachineConfig` objects, so any point
   already simulated by ``harness run``/``sweep`` — or a previous
   exploration — is a cache hit),
3. actual **simulation**, fanned out over a process pool with serial
   in-parent fallback.

A fully warm re-run additionally short-circuits through the report
cache (:func:`repro.harness.cache.explore_key`) without touching the
strategy at all.  Provenance counters (``simulated``, ``from_cache``,
``from_journal``, ...) live on the explorer — never inside
:class:`~repro.dse.result.ExploreResult`, whose serialized form must be
byte-identical between cold, warm and resumed runs.
"""

import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict

from repro.dse.journal import ExplorationJournal, default_explore_journal_path
from repro.dse.pareto import pareto_frontier
from repro.dse.result import EXPLORE_SCHEMA, ExploreResult, PointEval
from repro.dse.space import ParameterSpace, get_space, hardware_cost_kb
from repro.dse.strategies import Strategy, make_strategy
from repro.harness.cache import (ReportCache, SimulationCache, explore_key,
                                 simulation_key, stats_from_payload)
from repro.harness.runner import ExperimentRunner

__all__ = ["Explorer"]

#: config_name label under which exploration results are memoized and
#: cached; identity is carried by the config fingerprint, the label is
#: for observability only.
_DSE_CONFIG_NAME = "dse"


def _geomean(values):
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0.0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _evaluate_point_worker(cache_dir, workload_name, instructions, config,
                           tag):
    """Pool worker: simulate one (workload, config) pair.

    Top-level for picklability.  Builds its own runner against the
    shared cache directory (simulation + trace cache), so concurrent
    workers deduplicate work through the same content-addressed store
    the parent uses, and returns the stats as a plain payload the
    parent re-validates.
    """
    from repro.workloads import get_workload

    workload = get_workload(workload_name)
    cache = SimulationCache(cache_dir) if cache_dir else None
    runner = ExperimentRunner(workloads=[workload], instructions=instructions,
                              cache=cache)
    record = runner.run(workload, _DSE_CONFIG_NAME, config=config)
    return tag, workload_name, asdict(record.stats)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:          # platforms without fork
        return multiprocessing.get_context("spawn")


class Explorer:
    """One design-space exploration run.

    ``space`` is a :class:`~repro.dse.space.ParameterSpace` or a
    built-in space name; ``strategy`` a
    :class:`~repro.dse.strategies.Strategy` or a registered name.
    ``journal`` may be an :class:`ExplorationJournal`, a path, ``True``
    (derive the canonical path next to the cache) or ``None`` (no
    journal); ``resume=False`` resets an existing journal instead of
    replaying it.
    """

    def __init__(self, space, strategy="grid", workloads=None,
                 instructions=None, seed=1, max_points=0, cache=None,
                 jobs=1, journal=None, resume=True, verbose=False,
                 tracer=None):
        self.space = space if isinstance(space, ParameterSpace) \
            else get_space(space)
        self.space_fp = self.space.fingerprint()
        self.seed = int(seed)
        self.max_points = (int(max_points) if max_points
                           and max_points > 0 else self.space.size())
        self.max_points = min(self.max_points, self.space.size())
        if isinstance(strategy, Strategy):
            self.strategy = strategy
        else:
            self.strategy = make_strategy(strategy, self.space,
                                          seed=self.seed,
                                          max_points=self.max_points)
        self.workloads = self._resolve_workloads(workloads)
        self.instructions = instructions
        self.cache = cache
        self.jobs = max(1, int(jobs or 1))
        self.resume = bool(resume)
        self.verbose = verbose
        self.tracer = tracer
        self.journal = self._resolve_journal(journal)
        self._runner = ExperimentRunner(workloads=self.workloads,
                                        instructions=instructions,
                                        cache=cache)
        if hasattr(self.strategy, "set_probe"):
            self.strategy.set_probe(self._probe_bottleneck)
        # Provenance counters — CLI-facing only, never serialized into
        # the result (cold and warm runs must save byte-identical JSON).
        self.simulated = 0          # (point, workload) pairs simulated
        self.from_cache = 0         # ... loaded from the simulation cache
        self.from_journal = 0       # points replayed from the journal
        self.from_report_cache = False
        self.pool_failures = 0
        self.probes = 0             # headroom analyses the probe ran

    # -- construction helpers ------------------------------------------------------
    @staticmethod
    def _resolve_workloads(workloads):
        from repro.workloads import get_workload, suite

        if workloads is None:
            return list(suite())
        return [get_workload(w) if isinstance(w, str) else w
                for w in workloads]

    def _resolve_journal(self, journal):
        if journal is None or isinstance(journal, ExplorationJournal):
            return journal
        if journal is True:
            journal = default_explore_journal_path(
                cache_dir=getattr(self.cache, "directory", None),
                space_fp=self.space_fp, strategy=self.strategy.name,
                seed=self.seed,
                workload_names=[w.name for w in self.workloads],
                instructions=self.instructions)
        return ExplorationJournal(journal)

    def _budget_tag(self):
        """The int the journal stores for the instruction budget (0 =
        per-workload defaults)."""
        return self.instructions if self.instructions is not None else 0

    def _report_key(self):
        return explore_key(self.space_fp, self.strategy.name, self.seed,
                           self.max_points,
                           [w.name for w in self.workloads],
                           self.instructions)

    # -- the engine ----------------------------------------------------------------
    def run(self):
        """Run the exploration to completion; returns
        :class:`~repro.dse.result.ExploreResult`."""
        cached = self._load_report()
        if cached is not None:
            self.from_report_cache = True
            self._emit(0, "explore_cached", space=self.space.name,
                       points=len(cached.points))
            return cached
        replayed = {}
        if self.journal is not None:
            if self.resume:
                replayed = self.journal.replay(self.space_fp)
            else:
                self.journal.reset()
        self._emit(0, "explore_begin", space=self.space.name,
                   strategy=self.strategy.name, seed=self.seed,
                   max_points=self.max_points)
        evaluated = {}
        while True:
            batch = self.strategy.propose(evaluated)
            if not batch:
                break
            for index, point_eval in self._evaluate_batch(batch, replayed):
                evaluated[index] = point_eval
                # The stamp slot carries the evaluated-point count (this
                # package is time-free under the determinism lint).
                self._emit(len(evaluated), "point_done", index=index,
                           point_id=point_eval.point_id,
                           geomean_ipc=point_eval.geomean_ipc)
        if self.journal is not None:
            self.journal.close()
        result = self._assemble(evaluated)
        self._store_report(result)
        self._emit(len(evaluated), "explore_end",
                   points=len(result.points),
                   frontier=len(result.frontier))
        return result

    def _emit(self, stamp, kind, **payload):
        if self.tracer is not None and getattr(self.tracer, "enabled",
                                               False):
            self.tracer.event(stamp, kind, **payload)

    def _load_report(self):
        if self.cache is None or not self.resume:
            return None
        payload = ReportCache(self.cache.directory).load(self._report_key())
        if not isinstance(payload, dict) \
                or payload.get("schema") != EXPLORE_SCHEMA:
            return None
        try:
            return ExploreResult.from_dict(payload)
        except (KeyError, TypeError):
            return None

    def _store_report(self, result):
        if self.cache is not None:
            ReportCache(self.cache.directory).store(self._report_key(),
                                                    result.to_dict())

    # -- batch evaluation ----------------------------------------------------------
    def _evaluate_batch(self, batch, replayed):
        """Evaluate one strategy batch; yields (index, PointEval) pairs.

        The batch is a barrier: every point completes (journal replay,
        cache hit, or simulation) before control returns to the
        strategy, and results merge keyed by index, so the outcome is
        identical at any ``jobs``.  Each point is journaled the moment
        its last workload finishes — not at the batch boundary — so a
        ``kill -9`` mid-batch only loses in-flight points.
        """
        points = {index: self.space.point(index) for index in batch}
        stats_map = {index: {} for index in batch}   # index -> wl -> stats
        journaled = set()
        pending = []                                 # (index, workload)
        for index, point in sorted(points.items()):
            record = replayed.get(index)
            if record is not None and self._replay_matches(record, point):
                stats_map[index] = dict(record[1])
                self.from_journal += 1
                journaled.add(index)                 # already durable
                self._write_through(point, record[1])
                continue
            for workload in self.workloads:
                stats = self._load_cached(point, workload)
                if stats is not None:
                    stats_map[index][workload.name] = stats
                    self.from_cache += 1
                else:
                    pending.append((index, workload))
            self._maybe_journal(points, stats_map, journaled, index)
        for index, workload, stats in self._simulate(points, pending):
            stats_map[index][workload.name] = stats
            self.simulated += 1
            self._maybe_journal(points, stats_map, journaled, index)
        for index, point in sorted(points.items()):
            yield index, self._to_point_eval(point, stats_map[index])

    def _replay_matches(self, record_and_stats, point):
        record, stats = record_and_stats
        return (record["fingerprint"] == point.fingerprint
                and record["instructions"] == self._budget_tag()
                and set(stats) >= {w.name for w in self.workloads})

    def _write_through(self, point, stats_by_workload):
        """Persist journal-replayed stats into the simulation cache, so
        later non-exploration runs of the same config hit it too."""
        if self.cache is None:
            return
        for workload in self.workloads:
            key = simulation_key(workload.name,
                                 self._runner.budget_for(workload),
                                 point.fingerprint)
            if self.cache.load(key) is None:
                self.cache.store(key, workload.name, _DSE_CONFIG_NAME,
                                 self._runner.budget_for(workload),
                                 stats_by_workload[workload.name])

    def _load_cached(self, point, workload):
        if self.cache is None:
            return None
        return self.cache.load(
            simulation_key(workload.name, self._runner.budget_for(workload),
                           point.fingerprint))

    def _simulate(self, points, pending):
        """Simulate every (index, workload) in *pending*; yields
        (index, workload, stats) as each finishes.

        Yield order is not deterministic under ``jobs > 1`` (futures
        complete as they will) — only journaling keys off it, and the
        journal is an unordered map on replay; the assembled result is
        merged keyed by index either way.
        """
        serial = list(pending)
        if self.jobs > 1 and len(pending) > 1:
            serial = []
            yield from self._simulate_pool(points, pending, serial)
        for index, workload in serial:         # serial path / fallback
            record = self._runner.run(workload, _DSE_CONFIG_NAME,
                                      config=points[index].config)
            yield index, workload, record.stats

    def _simulate_pool(self, points, pending, failed):
        """Fan *pending* out over a process pool, yielding successes;
        tasks needing serial in-parent fallback land in *failed*."""
        from concurrent.futures import as_completed

        cache_dir = getattr(self.cache, "directory", None)
        done = set()                           # (index, workload name)
        try:
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending)),
                    mp_context=_pool_context()) as pool:
                futures = {
                    pool.submit(_evaluate_point_worker, cache_dir,
                                workload.name, self.instructions,
                                points[index].config, index):
                    (index, workload)
                    for index, workload in pending
                }
                for future in as_completed(futures):
                    index, workload = futures[future]
                    try:
                        tag, name, payload = future.result()
                        stats = stats_from_payload(payload)
                        if stats is None:
                            raise ValueError("corrupt worker payload")
                    except Exception:
                        self.pool_failures += 1
                        failed.append((index, workload))
                        continue
                    done.add((tag, name))
                    yield tag, workload, stats
        except Exception:
            # Pool-level failure (e.g. no usable start method): run
            # everything not yet collected serially.
            self.pool_failures += 1
            failed[:] = [(i, w) for i, w in pending
                         if (i, w.name) not in done]

    def _maybe_journal(self, points, stats_map, journaled, index):
        """Durably journal *index* once all its workloads have stats."""
        if self.journal is None or index in journaled:
            return
        if not set(stats_map[index]) >= {w.name for w in self.workloads}:
            return
        journaled.add(index)
        point = points[index]
        self.journal.record(
            self.space_fp, point.index,
            {dim: label for dim, label in point.labels},
            point.fingerprint, self._budget_tag(),
            {name: asdict(stats)
             for name, stats in sorted(stats_map[index].items())})

    def _to_point_eval(self, point, stats_by_workload):
        ipc = {w.name: round(stats_by_workload[w.name].ipc, 6)
               for w in self.workloads}
        return PointEval(
            index=point.index, point_id=point.point_id,
            assignment={dim: label for dim, label in point.labels},
            fingerprint=point.fingerprint,
            cost_kb=hardware_cost_kb(point.config),
            geomean_ipc=round(_geomean(ipc.values()), 6),
            ipc=ipc)

    # -- result assembly -----------------------------------------------------------
    def _assemble(self, evaluated):
        points = tuple(evaluated[index] for index in sorted(evaluated))
        vectors = [p.objectives for p in points]
        frontier = tuple(points[i].index for i in pareto_frontier(vectors))
        by_workload = {}
        for workload in self.workloads:
            wl_vectors = [(p.ipc[workload.name], -p.cost_kb) for p in points]
            by_workload[workload.name] = tuple(
                points[i].index for i in pareto_frontier(wl_vectors))
        return ExploreResult(
            schema=EXPLORE_SCHEMA, space=self.space.name,
            space_fingerprint=self.space_fp,
            strategy=self.strategy.name, seed=self.seed,
            max_points=self.max_points, space_size=self.space.size(),
            workloads=tuple(w.name for w in self.workloads),
            instructions=self.instructions, points=points,
            frontier=frontier, frontier_by_workload=by_workload)

    # -- the headroom probe --------------------------------------------------------
    def _probe_bottleneck(self, point_eval):
        """Bottleneck of a point's weakest workload, for the
        headroom-guided strategy (capped-budget traced analysis)."""
        from repro.analysis.headroom.report import (analyze_headroom,
                                                    dominant_bottleneck)

        name = min(point_eval.ipc.items(), key=lambda kv: (kv[1], kv[0]))[0]
        workload = next(w for w in self.workloads if w.name == name)
        point = self.space.point(point_eval.index)
        self.probes += 1
        report = analyze_headroom(workload, _DSE_CONFIG_NAME,
                                  config=point.config)
        return dominant_bottleneck(report)

    def summary(self):
        """One human-readable provenance line for the CLI."""
        if self.from_report_cache:
            return ("explore: warm result from the report cache "
                    "(0 simulations)")
        parts = [f"{self.simulated} simulated",
                 f"{self.from_cache} cache",
                 f"{self.from_journal} journal"]
        if self.probes:
            parts.append(f"{self.probes} headroom probes")
        if self.pool_failures:
            parts.append(f"{self.pool_failures} pool failures")
        return "explore: " + ", ".join(parts)
