"""Pluggable, deterministic search strategies over a parameter space.

A strategy proposes batches of space-point indices; the
:class:`~repro.dse.explore.Explorer` evaluates a whole batch (in
parallel) before asking for the next one.  That barrier is what makes
exploration results independent of ``--jobs``: the strategy only ever
sees fully evaluated rounds, its batch sizes are fixed per strategy
(never derived from the worker count), and all randomness flows from
one :class:`~repro.util.rng.XorShift64` stream seeded by ``--seed``.

Strategies:

``grid``
    Exhaustive row-major enumeration.  The reference: every other
    strategy's output is a subset of what grid would find.
``random``
    A seeded Fisher–Yates permutation of the space, served in fixed
    batches — unbiased coverage under a point budget.
``beam``
    Multi-start beam search: a random initial round, then repeated
    single-dimension mutations of the current Pareto parents
    (early-pruning via :func:`~repro.dse.pareto.prune_dominated`), with
    random restarts when the neighborhood is exhausted.
``headroom``
    Beam search that reads the headroom analyzer's attribution for the
    best point found so far and mutates the dimensions tagged with the
    binding bottleneck first (``dependence`` → predictor knobs,
    ``queue_pressure`` → sizing, ...).
"""

from repro.dse.pareto import prune_dominated
from repro.util.rng import XorShift64

__all__ = ["STRATEGIES", "BeamStrategy", "GridStrategy", "HeadroomStrategy",
           "RandomStrategy", "Strategy", "make_strategy", "strategy_names"]

#: Which space-dimension tags to mutate first for each bottleneck the
#: headroom analyzer can report (see
#: :func:`repro.analysis.headroom.report.dominant_bottleneck`).
BOTTLENECK_TAGS = {
    "dependence": ("vp", "spsr", "confidence"),
    "queue_pressure": ("sizing",),
    "flush_storms": ("confidence", "tables"),
    "vp_miss_silencing": ("silencing", "confidence"),
    "structural": ("sizing",),
}


class Strategy:
    """Base class: budget accounting plus the shared RNG stream."""

    name = "strategy"
    batch_size = 8

    def __init__(self, space, seed=1, max_points=0):
        self.space = space
        self.seed = int(seed)
        size = space.size()
        budget = int(max_points) if max_points and max_points > 0 else size
        self.budget = min(budget, size)
        self._rng = XorShift64(self.seed or 1)

    # -- the protocol --------------------------------------------------------------
    def propose(self, evaluated):
        """The next batch of point indices to evaluate.

        *evaluated* maps space-point index to
        :class:`~repro.dse.result.PointEval` for every point finished so
        far.  Returns a list of fresh indices (never already-evaluated,
        never duplicated, at most ``batch_size``, and never pushing past
        the point budget); an empty list ends the search.
        """
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------------
    def _remaining(self, evaluated):
        return max(0, self.budget - len(evaluated))

    def _shuffled(self, items):
        """Deterministic Fisher–Yates shuffle off the strategy stream."""
        items = list(items)
        for i in range(len(items) - 1, 0, -1):
            j = self._rng.next() % (i + 1)
            items[i], items[j] = items[j], items[i]
        return items


class GridStrategy(Strategy):
    """Exhaustive row-major enumeration of the whole space."""

    name = "grid"
    batch_size = 16

    def __init__(self, space, seed=1, max_points=0):
        super().__init__(space, seed, max_points)
        self._cursor = 0

    def propose(self, evaluated):
        quota = min(self._remaining(evaluated), self.batch_size)
        batch = []
        while len(batch) < quota and self._cursor < self.space.size():
            if self._cursor not in evaluated:
                batch.append(self._cursor)
            self._cursor += 1
        return batch


class RandomStrategy(Strategy):
    """A seeded permutation of the space, served in fixed batches."""

    name = "random"
    batch_size = 8

    def __init__(self, space, seed=1, max_points=0):
        super().__init__(space, seed, max_points)
        self._order = self._shuffled(range(space.size()))
        self._cursor = 0

    def propose(self, evaluated):
        quota = min(self._remaining(evaluated), self.batch_size)
        batch = []
        while len(batch) < quota and self._cursor < len(self._order):
            index = self._order[self._cursor]
            self._cursor += 1
            if index not in evaluated:
                batch.append(index)
        return batch


class BeamStrategy(Strategy):
    """Multi-start beam search over single-dimension mutations.

    Each round keeps the Pareto frontier of everything evaluated so far
    (plus ``keep`` runner-up parents, pruning the rest — dominated
    points never breed), takes the ``width`` best parents by geomean
    IPC, and proposes their unvisited one-dimension neighbors.  When the
    neighborhood is exhausted the search restarts from fresh random
    points, so with a large enough budget it degenerates gracefully into
    full coverage.
    """

    name = "beam"
    width = 4
    keep = 2
    batch_size = 8

    def __init__(self, space, seed=1, max_points=0):
        super().__init__(space, seed, max_points)
        self._restarts = self._shuffled(range(space.size()))

    def propose(self, evaluated):
        quota = min(self._remaining(evaluated), self.batch_size)
        if quota <= 0:
            return []
        if not evaluated:
            return self._restart(evaluated, quota, [])
        fresh = self._neighbors(evaluated, quota)
        if len(fresh) < quota:
            fresh = self._restart(evaluated, quota, fresh)
        return fresh

    def _parents(self, evaluated):
        """The breeding points: Pareto survivors, best-IPC first."""
        points = [evaluated[index] for index in sorted(evaluated)]
        vectors = [point.objectives for point in points]
        survivors = [points[i] for i in prune_dominated(vectors,
                                                        keep=self.keep)]
        survivors.sort(key=lambda p: (-p.geomean_ipc, p.index))
        return survivors[:self.width]

    def _neighbors(self, evaluated, quota):
        """Up to *quota* unvisited one-dimension mutations of the
        parents, in deterministic shuffled order."""
        seen = set(evaluated)
        candidates = []
        for parent in self._parents(evaluated):
            assignment = list(self.space.assignment_at(parent.index))
            for dim, dimension in enumerate(self.space.dimensions):
                for choice in range(len(dimension.choices)):
                    if choice == assignment[dim]:
                        continue
                    mutated = list(assignment)
                    mutated[dim] = choice
                    index = self.space.index_of(mutated)
                    if index not in seen:
                        seen.add(index)
                        candidates.append((dimension, index))
        ordered = self._order_candidates(candidates, evaluated)
        return ordered[:quota]

    def _order_candidates(self, candidates, evaluated):
        """Hook for subclasses; the beam just shuffles uniformly."""
        return [index for _dim, index in self._shuffled(candidates)]

    def _restart(self, evaluated, quota, batch):
        """Top *batch* up with fresh random points (multi-start)."""
        taken = set(evaluated) | set(batch)
        batch = list(batch)
        for index in self._restarts:
            if len(batch) >= quota:
                break
            if index not in taken:
                batch.append(index)
        return batch


class HeadroomStrategy(BeamStrategy):
    """Beam search steered by the headroom analyzer's attribution.

    The explorer injects a *probe* (:meth:`set_probe`) that runs
    :func:`repro.analysis.headroom.report.analyze_headroom` on a point
    and returns its dominant bottleneck.  Each round the best parent is
    probed (memoized per point) and candidates mutating a dimension
    tagged with that bottleneck are proposed before all others — the
    search spends its budget where the analyzer says the cycles went.
    Without a probe it degrades to plain beam search.
    """

    name = "headroom"

    def __init__(self, space, seed=1, max_points=0):
        super().__init__(space, seed, max_points)
        self._probe = None
        self._bottlenecks = {}      # point index -> bottleneck name

    def set_probe(self, probe):
        """Install the bottleneck probe: ``probe(PointEval) -> str``."""
        self._probe = probe

    def _bottleneck_for(self, evaluated):
        if self._probe is None or not evaluated:
            return None
        best = min(evaluated.values(),
                   key=lambda p: (-p.geomean_ipc, p.index))
        if best.index not in self._bottlenecks:
            try:
                self._bottlenecks[best.index] = self._probe(best)
            except Exception:
                self._bottlenecks[best.index] = None
        return self._bottlenecks[best.index]

    def _order_candidates(self, candidates, evaluated):
        bottleneck = self._bottleneck_for(evaluated)
        tags = set(BOTTLENECK_TAGS.get(bottleneck, ()))
        if not tags:
            return super()._order_candidates(candidates, evaluated)
        hot = [(d, i) for d, i in candidates if tags & set(d.tags)]
        cold = [(d, i) for d, i in candidates if not (tags & set(d.tags))]
        return ([index for _dim, index in self._shuffled(hot)]
                + [index for _dim, index in self._shuffled(cold)])


STRATEGIES = {
    cls.name: cls
    for cls in (GridStrategy, RandomStrategy, BeamStrategy, HeadroomStrategy)
}


def strategy_names():
    """Registered strategy names, stable order."""
    return sorted(STRATEGIES)


def make_strategy(name, space, seed=1, max_points=0):
    """Instantiate a registered strategy by name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise KeyError(f"unknown strategy {name!r}; choose from "
                       f"{', '.join(strategy_names())}") from None
    return cls(space, seed=seed, max_points=max_points)
