"""Durable, resumable journaling for design-space explorations.

Same discipline as :class:`repro.harness.orchestrator.SweepJournal` —
append-only fsync'd JSONL, one record per fully evaluated space point,
torn final lines and foreign code versions skipped on replay, atomic
in-place compaction when stale records dominate.  A ``kill -9`` halfway
through a 200-point search therefore costs nothing: the resumed run
replays every completed point straight from the journal (write-through
into the simulation cache) and only simulates the remainder.

A journal line carries the full identity of one evaluated point — the
space *content* fingerprint (not its name), the point index and
assignment, the compiled config fingerprint, the workload set and
instruction budget — plus per-workload stats payloads, so replay needs
nothing but the file itself.
"""

import hashlib
import json
import os
import tempfile

from repro.harness.cache import code_version_hash, stats_from_payload

__all__ = ["ExplorationJournal", "default_explore_journal_path"]


def default_explore_journal_path(cache_dir=None, space_fp="", strategy="",
                                 seed=0, workload_names=(), instructions=None):
    """The canonical journal location for one exploration specification.

    Exploration journals share the sweep journals' directory
    (``<cache-dir>/journals``) under an ``explore-`` prefix and are named
    by a hash of the exploration's identity — space content fingerprint,
    strategy, seed, workload set and instruction budget — so re-running
    the same ``harness explore`` command finds and resumes its own
    journal while any change to the search gets a fresh one.
    """
    base = cache_dir or os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
    blob = json.dumps([space_fp, strategy, seed, sorted(workload_names),
                       instructions], separators=(",", ":"))
    explore_id = hashlib.sha256(blob.encode()).hexdigest()[:16]
    return os.path.join(str(base), "journals", f"explore-{explore_id}.jsonl")


class ExplorationJournal:
    """Append-only, fsync'd JSONL log of fully evaluated space points.

    Each record holds one point's identity plus its per-workload stats;
    a point is journaled only once **all** its workloads finished, so
    replayed records never need partial-result reconciliation.
    """

    FORMAT = 1
    _COMPACT_MIN_STALE = 32

    def __init__(self, path):
        self.path = str(path)
        self._handle = None

    # -- writing -------------------------------------------------------------------
    def record(self, space_fp, point_index, assignment, fingerprint,
               instructions, stats_by_workload):
        """Durably append one fully evaluated point (flush + fsync).

        *stats_by_workload* maps workload name to an ``asdict``-style
        stats payload (already plain data, ready for JSON).
        """
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a")
        line = json.dumps({
            "format": self.FORMAT,
            "space": space_fp,
            "point": point_index,
            "assignment": dict(assignment),
            "fingerprint": fingerprint,
            "instructions": instructions,
            "code_version": code_version_hash(),
            "stats": dict(stats_by_workload),
        }, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reset(self):
        """Discard the journal (``--no-resume``)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # -- reading -------------------------------------------------------------------
    def replay(self, space_fp):
        """``{point_index: (record, {workload: PipelineStats})}`` for every
        valid current-code record of *space_fp*.

        Torn tails, records from other code versions or other spaces, and
        payloads with unknown stats fields are skipped; the file is
        compacted (atomic temp-file + ``os.replace``) when stale records
        dominate.  Later duplicates of the same point index win, matching
        append order.
        """
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except OSError:
            return {}
        valid, replayed, stale = [], {}, 0
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                stale += 1
                continue
            if (not isinstance(record, dict)
                    or record.get("format") != self.FORMAT
                    or record.get("code_version") != code_version_hash()
                    or record.get("space") != space_fp
                    or not isinstance(record.get("point"), int)
                    or not isinstance(record.get("assignment"), dict)
                    or not isinstance(record.get("fingerprint"), str)
                    or not isinstance(record.get("instructions"), int)
                    or not isinstance(record.get("stats"), dict)):
                stale += 1
                continue
            stats_map = {}
            for workload, payload in sorted(record["stats"].items()):
                stats = stats_from_payload(payload)
                if stats is None:
                    stats_map = None
                    break
                stats_map[workload] = stats
            if not stats_map:
                stale += 1
                continue
            valid.append(record)
            replayed[record["point"]] = (record, stats_map)
        if stale > self._COMPACT_MIN_STALE and stale > len(valid):
            self._compact(valid)
        return replayed

    def _compact(self, valid):
        """Atomically rewrite the journal with only the valid records."""
        self.close()
        directory = os.path.dirname(self.path) or "."
        try:
            handle, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(handle, "w") as tmp:
                for record in valid:
                    tmp.write(json.dumps(record, sort_keys=True) + "\n")
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_path, self.path)
        except OSError:
            pass
