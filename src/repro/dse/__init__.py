"""Design-space exploration over :func:`repro.api.sweep`-grade simulation.

The paper evaluates four hand-picked configurations; this package turns
the machinery built around them — the stable runner, the
content-addressed result cache, the headroom analyzer — into a search
layer that explores thousands:

* :mod:`repro.dse.space` — declarative parameter spaces (VTAGE geometry,
  FPC confidence, silencing window, SpSR, ROB/IQ/PRF sizing) compiling
  to validated :class:`~repro.pipeline.config.MachineConfig` points
  whose fingerprints hit the existing simulation cache;
* :mod:`repro.dse.pareto` — the dominance/frontier/pruning core
  (property-tested against a brute-force reference);
* :mod:`repro.dse.strategies` — exhaustive grid, seeded random,
  multi-start beam and headroom-guided search, all driven by one
  deterministic :class:`~repro.util.rng.XorShift64` stream;
* :mod:`repro.dse.journal` — the durable, fsync'd
  :class:`ExplorationJournal` (``kill -9`` mid-search resumes with zero
  recomputation);
* :mod:`repro.dse.explore` — the :class:`Explorer` engine tying them
  together into a frozen :class:`~repro.dse.result.ExploreResult`;
* :mod:`repro.dse.report` — Pareto-frontier reports as JSON, markdown
  and LaTeX.

The CLI entry point is ``harness explore`` (see
:mod:`repro.harness.cli`); the stable programmatic surface is
:func:`repro.api.explore`.
"""

from repro.dse.explore import Explorer
from repro.dse.journal import ExplorationJournal, default_explore_journal_path
from repro.dse.pareto import dominates, pareto_frontier, prune_dominated
from repro.dse.result import ExploreResult, PointEval
from repro.dse.space import (SPACES, Choice, Dimension, ParameterSpace,
                             SpacePoint, get_space, hardware_cost_kb,
                             space_names)
from repro.dse.strategies import STRATEGIES, make_strategy, strategy_names

__all__ = [
    "Choice",
    "Dimension",
    "ExplorationJournal",
    "ExploreResult",
    "Explorer",
    "ParameterSpace",
    "PointEval",
    "SPACES",
    "STRATEGIES",
    "SpacePoint",
    "default_explore_journal_path",
    "dominates",
    "get_space",
    "hardware_cost_kb",
    "make_strategy",
    "pareto_frontier",
    "prune_dominated",
    "space_names",
    "strategy_names",
]
