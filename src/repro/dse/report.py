"""Pareto-frontier reports: JSON, markdown and LaTeX renderings.

All renderers are pure functions of a frozen
:class:`~repro.dse.result.ExploreResult` — no I/O, no clocks — so the
same result always renders byte-identically (the golden exploration
snapshot pins exactly this).  Markdown is the CLI's human-facing
default; LaTeX emits a paper-ready ``tabular`` matching the source
paper's config-table style; JSON is simply the documented
``to_dict()`` payload.
"""

import json

__all__ = ["FORMATS", "frontier_rows", "render", "render_json",
           "render_latex", "render_markdown"]


def frontier_rows(result, workload=None):
    """The frontier as plain row dicts, cheapest-first.

    With *workload* set, rows come from that workload's own frontier
    (its IPC as the quality axis); otherwise from the suite-wide
    geomean frontier.
    """
    if workload is None:
        indices = result.frontier
    else:
        indices = result.frontier_by_workload[workload]
    rows = []
    for index in indices:
        point = result.point(index)
        quality = (point.geomean_ipc if workload is None
                   else point.ipc[workload])
        rows.append({
            "index": point.index,
            "point_id": point.point_id,
            "cost_kb": point.cost_kb,
            "ipc": quality,
        })
    rows.sort(key=lambda row: (row["cost_kb"], -row["ipc"], row["index"]))
    return rows


def _header(result):
    evaluated = len(result.points)
    return (f"space `{result.space}` ({result.space_size} points, "
            f"{evaluated} evaluated) · strategy `{result.strategy}` · "
            f"seed {result.seed}")


def render_markdown(result):
    """Markdown report: suite-wide frontier plus one table per workload."""
    lines = ["# Design-space exploration report", "", _header(result), ""]
    lines += _markdown_table("Suite-wide Pareto frontier (geomean IPC)",
                             "geomean IPC", frontier_rows(result))
    for workload in result.workloads:
        lines += _markdown_table(f"Frontier: `{workload}`", "IPC",
                                 frontier_rows(result, workload))
    return "\n".join(lines).rstrip() + "\n"


def _markdown_table(title, quality_name, rows):
    lines = [f"## {title}", "",
             f"| point | cost (KB) | {quality_name} |",
             "|---|---:|---:|"]
    for row in rows:
        lines.append(f"| `{row['point_id']}` | {row['cost_kb']:.3f} "
                     f"| {row['ipc']:.4f} |")
    lines.append("")
    return lines


def render_latex(result):
    """A paper-ready LaTeX ``tabular`` of the suite-wide frontier."""
    rows = frontier_rows(result)
    lines = [
        r"% " + _header(result).replace("`", ""),
        r"\begin{tabular}{lrr}",
        r"\toprule",
        r"Configuration & Cost (KB) & Geomean IPC \\",
        r"\midrule",
    ]
    for row in rows:
        point_id = row["point_id"].replace("_", r"\_").replace("|", r" $|$ ")
        lines.append(f"{point_id} & {row['cost_kb']:.3f} "
                     f"& {row['ipc']:.4f} \\\\")
    lines += [r"\bottomrule", r"\end{tabular}", ""]
    return "\n".join(lines)


def render_json(result):
    """The documented JSON payload, deterministically serialized."""
    return json.dumps(result.to_dict(), sort_keys=True, indent=2) + "\n"


FORMATS = {
    "markdown": render_markdown,
    "latex": render_latex,
    "json": render_json,
}


def render(result, fmt="markdown"):
    """Render *result* in one of :data:`FORMATS`."""
    try:
        renderer = FORMATS[fmt]
    except KeyError:
        raise KeyError(f"unknown report format {fmt!r}; choose from "
                       f"{', '.join(sorted(FORMATS))}") from None
    return renderer(result)
