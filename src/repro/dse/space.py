"""Declarative parameter spaces over :class:`MachineConfig`.

A :class:`ParameterSpace` is a named cartesian product of
:class:`Dimension`\\ s; each dimension offers labelled :class:`Choice`\\ s
carrying plain override dicts.  ``space.point(indices)`` compiles one
assignment into a **validated** :class:`MachineConfig` (unknown override
keys raise, exactly like ``ExperimentRunner.config``) and stamps it with
the same content fingerprint the simulation cache keys on — so every
point a search evaluates hits the existing result cache, and a point
that happens to equal a named configuration (the ``paper`` space) shares
cache entries with ordinary sweeps.

Override keys are :class:`MachineConfig` field names; the prefixed form
``vtage.<field>`` overrides one field of the predictor geometry
(:class:`~repro.core.vtage.VtageConfig`), merged onto the flavor's
default geometry so independent dimensions (table sizes, confidence
vector) compose.  Dimensions of one space must claim disjoint override
keys — a space where two dimensions fight over one knob is a definition
bug and raises at construction.

Dimension *tags* ("vp", "confidence", "silencing", "spsr", "sizing",
"tables") are the hook the headroom-guided strategy uses to mutate the
parameters behind the binding bottleneck first.
"""

from dataclasses import dataclass, fields, replace
from typing import Mapping, Tuple

from repro.core.storage import vtage_storage_bits
from repro.core.vtage import VtageConfig
from repro.harness.cache import config_fingerprint, space_fingerprint
from repro.pipeline.config import MachineConfig

__all__ = [
    "SPACES",
    "Choice",
    "Dimension",
    "ParameterSpace",
    "SpacePoint",
    "get_space",
    "hardware_cost_kb",
    "space_names",
]

_VTAGE_PREFIX = "vtage."
_CONFIG_FIELDS = frozenset(f.name for f in fields(MachineConfig))
_VTAGE_FIELDS = frozenset(f.name for f in fields(VtageConfig))


def _validate_overrides(overrides, where):
    for key in overrides:
        if key.startswith(_VTAGE_PREFIX):
            if key[len(_VTAGE_PREFIX):] not in _VTAGE_FIELDS:
                raise KeyError(f"{where}: unknown VtageConfig override "
                               f"{key!r}; valid: "
                               f"{sorted(_VTAGE_FIELDS)}")
        elif key not in _CONFIG_FIELDS:
            raise KeyError(f"{where}: unknown MachineConfig override "
                           f"{key!r}; valid: {sorted(_CONFIG_FIELDS)}")


@dataclass(frozen=True)
class Choice:
    """One labelled setting of a dimension: a bag of config overrides."""

    label: str
    overrides: Mapping[str, object]


@dataclass(frozen=True)
class Dimension:
    """One axis of a space: a name, its choices, and strategy tags."""

    name: str
    choices: Tuple[Choice, ...]
    tags: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.choices:
            raise ValueError(f"dimension {self.name!r} has no choices")
        labels = [c.label for c in self.choices]
        if len(set(labels)) != len(labels):
            raise ValueError(f"dimension {self.name!r} repeats a label")
        for choice in self.choices:
            _validate_overrides(choice.overrides,
                                f"{self.name}/{choice.label}")

    @property
    def keys(self):
        """Every override key any choice of this dimension touches."""
        out = {}
        for choice in self.choices:
            for key in choice.overrides:
                out[key] = True
        return tuple(out)


@dataclass(frozen=True)
class SpacePoint:
    """One compiled point: assignment, validated config, fingerprint."""

    space: str
    index: int                     # position in canonical grid order
    assignment: Tuple[int, ...]    # choice index per dimension
    labels: Tuple[Tuple[str, str], ...]   # (dimension, choice label) pairs
    config: MachineConfig
    fingerprint: str               # == config_fingerprint(config)

    @property
    def point_id(self):
        """Stable human-readable identity, e.g. ``silence=50|rob=315``."""
        return "|".join(f"{dim}={label}" for dim, label in self.labels)


@dataclass(frozen=True)
class ParameterSpace:
    """A named cartesian product of dimensions over a base config."""

    name: str
    base: str                      # named base config ("baseline", ...)
    dimensions: Tuple[Dimension, ...]
    description: str = ""

    def __post_init__(self):
        claimed = {}
        for dimension in self.dimensions:
            for key in dimension.keys:
                if key in claimed:
                    raise ValueError(
                        f"space {self.name!r}: dimensions "
                        f"{claimed[key]!r} and {dimension.name!r} both "
                        f"override {key!r}")
                claimed[key] = dimension.name

    def size(self):
        total = 1
        for dimension in self.dimensions:
            total *= len(dimension.choices)
        return total

    def assignment_at(self, index):
        """The choice-index tuple for grid position *index* (row-major,
        last dimension fastest)."""
        if not 0 <= index < self.size():
            raise IndexError(f"point index {index} outside space of "
                             f"{self.size()}")
        indices = []
        for dimension in reversed(self.dimensions):
            indices.append(index % len(dimension.choices))
            index //= len(dimension.choices)
        return tuple(reversed(indices))

    def index_of(self, assignment):
        """Inverse of :meth:`assignment_at`."""
        index = 0
        for dimension, choice in zip(self.dimensions, assignment):
            if not 0 <= choice < len(dimension.choices):
                raise IndexError(f"choice {choice} outside dimension "
                                 f"{dimension.name!r}")
            index = index * len(dimension.choices) + choice
        return index

    def compile(self, assignment):
        """The validated :class:`MachineConfig` for one assignment."""
        from repro.harness.runner import ExperimentRunner

        if len(assignment) != len(self.dimensions):
            raise ValueError(f"assignment arity {len(assignment)} != "
                             f"{len(self.dimensions)} dimensions")
        top, sub = {}, {}
        for dimension, choice_index in zip(self.dimensions, assignment):
            for key, value in dimension.choices[choice_index].overrides.items():
                if key.startswith(_VTAGE_PREFIX):
                    sub[key[len(_VTAGE_PREFIX):]] = value
                else:
                    top[key] = value
        config = ExperimentRunner.config(self.base, **top)
        if sub:
            geometry = config.vtage_config()
            if geometry is None:
                raise ValueError(
                    f"space {self.name!r}: vtage.* overrides on a point "
                    f"with no value predictor ({self.base!r} base, "
                    f"assignment {assignment})")
            config = config.with_(vtage=replace(geometry, **sub))
        return config

    def point(self, index=None, assignment=None):
        """The :class:`SpacePoint` at a grid index or an assignment."""
        if assignment is None:
            assignment = self.assignment_at(index)
        else:
            assignment = tuple(assignment)
            index = self.index_of(assignment)
        config = self.compile(assignment)
        labels = tuple(
            (dimension.name, dimension.choices[choice].label)
            for dimension, choice in zip(self.dimensions, assignment))
        return SpacePoint(space=self.name, index=index,
                          assignment=assignment, labels=labels,
                          config=config,
                          fingerprint=config_fingerprint(config))

    def canonical(self):
        """A plain JSON-able structure capturing the definition exactly
        (the input to :func:`repro.harness.cache.space_fingerprint`)."""
        return {
            "name": self.name,
            "base": self.base,
            "dimensions": [
                {"name": d.name, "tags": list(d.tags),
                 "choices": [{"label": c.label,
                              "overrides": dict(c.overrides)}
                             for c in d.choices]}
                for d in self.dimensions
            ],
        }

    def fingerprint(self):
        """Stable content hash of the space definition."""
        return space_fingerprint(self.canonical())


# -- the cost objective --------------------------------------------------------------
def hardware_cost_kb(config):
    """Deterministic hardware-budget estimate (KB) for the cost axis.

    Predictor storage is bit-exact (:mod:`repro.core.storage`, the
    paper's Table 2 accounting); the backend structures use documented
    per-entry width estimates — ROB 96b, IQ 64b, physical registers 64b,
    LQ/SQ 80b — plus a flat 2 KB for the SpSR tracking tables.  The
    absolute scale is a modelling choice; what the Pareto frontier needs
    is a *consistent, monotone* cost ordering over the knobs the spaces
    move.
    """
    bits = 0
    geometry = config.vtage_config()
    if geometry is not None:
        bits += vtage_storage_bits(geometry)
    bits += config.rob_entries * 96
    bits += config.iq_entries * 64
    bits += (config.int_phys_regs + config.fp_phys_regs) * 64
    bits += (config.lq_entries + config.sq_entries) * 80
    if config.enable_spsr:
        bits += 2 * 1024 * 8
    return round(bits / 8.0 / 1024.0, 3)


# -- built-in spaces -----------------------------------------------------------------
def _space_smoke():
    """Tiny 2x2 space for CI smoke runs and the golden snapshot."""
    return ParameterSpace(
        name="smoke", base="tvp+spsr",
        description="2x2 smoke space: silencing window x ROB size",
        dimensions=(
            Dimension("silence", tags=("silencing", "vp"), choices=(
                Choice("50", {"vp_silence_cycles": 50}),
                Choice("250", {"vp_silence_cycles": 250}),
            )),
            Dimension("rob", tags=("sizing",), choices=(
                Choice("192", {"rob_entries": 192}),
                Choice("315", {"rob_entries": 315}),
            )),
        ))


def _space_paper():
    """The paper's four evaluated configurations as one 4-point space.

    Each point compiles to exactly the named configuration (same
    fingerprint), so exploring this space shares cache entries with
    every ordinary ``harness run``/``sweep`` invocation.
    """
    from repro.core.modes import VPFlavor

    return ParameterSpace(
        name="paper", base="baseline",
        description="baseline / MVP / TVP / GVP — the paper's Fig. 3 set",
        dimensions=(
            Dimension("flavor", tags=("vp",), choices=(
                Choice("baseline", {}),
                Choice("mvp", {"vp_flavor": VPFlavor.MVP}),
                Choice("tvp", {"vp_flavor": VPFlavor.TVP}),
                Choice("gvp", {"vp_flavor": VPFlavor.GVP}),
            )),
        ))


def _space_vtage():
    """VTAGE table count and geometry (the Bullseye-style table sweep)."""
    return ParameterSpace(
        name="vtage", base="tvp+spsr",
        description="VTAGE tagged-table count/size x base-table size",
        dimensions=(
            Dimension("tables", tags=("vp", "tables"), choices=(
                Choice("paper7", {}),
                Choice("short4", {
                    "vtage.tagged_log2": (9, 9, 8, 8),
                    "vtage.tag_bits": (9, 10, 11, 12),
                }),
                Choice("deep10", {
                    "vtage.tagged_log2": (9, 9, 9, 8, 8, 8, 7, 7, 7, 6),
                    "vtage.tag_bits": (9, 9, 9, 10, 10, 11, 11, 12, 12, 13),
                }),
            )),
            Dimension("base", tags=("vp", "tables"), choices=(
                Choice("1k", {"vtage.base_log2": 10}),
                Choice("4k", {"vtage.base_log2": 12}),
            )),
        ))


def _space_confidence():
    """FPC confidence vector: acceptance probability x counter width."""
    return ParameterSpace(
        name="confidence", base="tvp+spsr",
        description="FPC acceptance 1/N x confidence counter bits",
        dimensions=(
            Dimension("fpc", tags=("vp", "confidence"), choices=(
                Choice("1/4", {"vtage.fpc_one_in": 4}),
                Choice("1/16", {"vtage.fpc_one_in": 16}),
                Choice("1/64", {"vtage.fpc_one_in": 64}),
            )),
            Dimension("conf_bits", tags=("vp", "confidence"), choices=(
                Choice("2", {"vtage.confidence_bits": 2}),
                Choice("3", {"vtage.confidence_bits": 3}),
            )),
        ))


def _space_silencing():
    """The VP silencing window the paper fixes at 250 cycles."""
    return ParameterSpace(
        name="silencing", base="tvp+spsr",
        description="misprediction silencing shadow in cycles",
        dimensions=(
            Dimension("silence", tags=("vp", "silencing"), choices=(
                Choice("0", {"vp_silence_cycles": 0}),
                Choice("50", {"vp_silence_cycles": 50}),
                Choice("250", {"vp_silence_cycles": 250}),
                Choice("1000", {"vp_silence_cycles": 1000}),
            )),
        ))


def _space_spsr():
    """SpSR table subsets: off / Table 1 / Table 1 + constant folding.

    Based on ``baseline`` (whose builder forwards every field) so the
    dimension can own ``enable_spsr`` without fighting the ``tvp+spsr``
    builder's own spsr argument; the flavor choice rides in the same
    dimension.
    """
    from repro.core.modes import VPFlavor

    return ParameterSpace(
        name="spsr", base="baseline",
        description="which speculative strength-reduction idioms run "
                    "(under TVP)",
        dimensions=(
            Dimension("spsr", tags=("spsr", "vp"), choices=(
                Choice("off", {"vp_flavor": VPFlavor.TVP,
                               "enable_spsr": False}),
                Choice("table1", {"vp_flavor": VPFlavor.TVP,
                                  "enable_spsr": True}),
                Choice("table1+fold", {"vp_flavor": VPFlavor.TVP,
                                       "enable_spsr": True,
                                       "spsr_constant_folding": True}),
            )),
        ))


def _space_sizing():
    """ROB / IQ / PRF scaling around the paper's Table 2 backend."""
    return ParameterSpace(
        name="sizing", base="tvp+spsr",
        description="ROB x IQ x physical-register-file sizing",
        dimensions=(
            Dimension("rob", tags=("sizing",), choices=(
                Choice("128", {"rob_entries": 128}),
                Choice("192", {"rob_entries": 192}),
                Choice("315", {"rob_entries": 315}),
            )),
            Dimension("iq", tags=("sizing",), choices=(
                Choice("48", {"iq_entries": 48}),
                Choice("92", {"iq_entries": 92}),
            )),
            Dimension("prf", tags=("sizing",), choices=(
                Choice("192", {"int_phys_regs": 192, "fp_phys_regs": 192}),
                Choice("292", {"int_phys_regs": 292, "fp_phys_regs": 292}),
            )),
        ))


def _space_full():
    """The big joint space (216 points) for frontier-scale exploration."""
    from repro.core.modes import VPFlavor

    return ParameterSpace(
        name="full", base="baseline",
        description="flavor x SpSR x silencing x confidence x ROB x IQ "
                    "(216 points)",
        dimensions=(
            Dimension("flavor", tags=("vp",), choices=(
                Choice("mvp", {"vp_flavor": VPFlavor.MVP}),
                Choice("tvp", {"vp_flavor": VPFlavor.TVP}),
                Choice("gvp", {"vp_flavor": VPFlavor.GVP}),
            )),
            Dimension("spsr", tags=("spsr",), choices=(
                Choice("off", {"enable_spsr": False}),
                Choice("on", {"enable_spsr": True}),
            )),
            Dimension("silence", tags=("vp", "silencing"), choices=(
                Choice("50", {"vp_silence_cycles": 50}),
                Choice("250", {"vp_silence_cycles": 250}),
                Choice("1000", {"vp_silence_cycles": 1000}),
            )),
            Dimension("fpc", tags=("vp", "confidence"), choices=(
                Choice("1/8", {"vtage.fpc_one_in": 8}),
                Choice("1/16", {"vtage.fpc_one_in": 16}),
                Choice("1/32", {"vtage.fpc_one_in": 32}),
            )),
            Dimension("rob", tags=("sizing",), choices=(
                Choice("192", {"rob_entries": 192}),
                Choice("315", {"rob_entries": 315}),
            )),
            Dimension("iq", tags=("sizing",), choices=(
                Choice("48", {"iq_entries": 48}),
                Choice("92", {"iq_entries": 92}),
            )),
        ))


SPACES = {
    "smoke": _space_smoke,
    "paper": _space_paper,
    "vtage": _space_vtage,
    "confidence": _space_confidence,
    "silencing": _space_silencing,
    "spsr": _space_spsr,
    "sizing": _space_sizing,
    "full": _space_full,
}

_space_memo = {}


def space_names():
    """Every registered space name, sorted."""
    return sorted(SPACES)


def get_space(name):
    """One built-in space by name (definitions are immutable, memoized)."""
    if isinstance(name, ParameterSpace):
        return name
    if name not in SPACES:
        raise KeyError(f"unknown space {name!r}; valid: {space_names()}")
    if name not in _space_memo:
        _space_memo[name] = SPACES[name]()
    return _space_memo[name]
