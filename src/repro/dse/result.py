"""Frozen, JSON-round-trippable results of a design-space exploration.

Same contract as :class:`repro.api.SimResult` / ``SweepResult``:
``to_dict()`` is the documented stable payload, ``from_dict()`` its
exact inverse, and the dict is **deterministic** — two explorations of
the same space with the same seed serialize byte-identically (under
``json.dumps(..., sort_keys=True)``) whether they ran cold, warm from
the cache, across different ``--jobs``, or resumed after a ``kill -9``.
Provenance counters (how many points were simulated vs replayed) are
deliberately *not* part of the result; they live on the
:class:`~repro.dse.explore.Explorer` and are printed by the CLI only.
"""

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.envelope import check_schema, header, request_fingerprint

__all__ = ["EXPLORE_SCHEMA", "ExploreResult", "PointEval"]

EXPLORE_SCHEMA = "explore/2"


@dataclass(frozen=True)
class PointEval:
    """One fully evaluated space point.

    Objectives follow the explorer's maximization convention:
    ``(geomean_ipc, -cost_kb)`` — higher is better in both coordinates.
    """

    index: int                       # row-major index within the space
    point_id: str                    # "dim=label|dim=label", human-stable
    assignment: Mapping[str, str]    # dimension name -> choice label
    fingerprint: str                 # compiled MachineConfig fingerprint
    cost_kb: float                   # modeled hardware cost, KB
    geomean_ipc: float
    ipc: Mapping[str, float]         # per-workload IPC

    @property
    def objectives(self):
        return (self.geomean_ipc, -self.cost_kb)

    def to_dict(self):
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "index": self.index,
            "point_id": self.point_id,
            "assignment": dict(self.assignment),
            "fingerprint": self.fingerprint,
            "cost_kb": self.cost_kb,
            "geomean_ipc": self.geomean_ipc,
            "ipc": dict(self.ipc),
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(index=payload["index"], point_id=payload["point_id"],
                   assignment=dict(payload["assignment"]),
                   fingerprint=payload["fingerprint"],
                   cost_kb=payload["cost_kb"],
                   geomean_ipc=payload["geomean_ipc"],
                   ipc=dict(payload["ipc"]))


@dataclass(frozen=True)
class ExploreResult:
    """A finished exploration: every evaluated point plus its frontiers.

    ``frontier`` and each ``frontier_by_workload`` entry hold **space
    point indices** (``PointEval.index`` values, ascending), not
    positions in the ``points`` list, so they stay meaningful against
    the space definition itself.
    """

    schema: str
    space: str                       # space name ("smoke", "paper", ...)
    space_fingerprint: str           # content hash of the space definition
    strategy: str
    seed: int
    max_points: int                  # point budget the search ran under
    space_size: int                  # total points the space defines
    workloads: Tuple[str, ...]
    instructions: Optional[int]
    points: Tuple[PointEval, ...]    # ascending by index
    frontier: Tuple[int, ...]        # suite-wide Pareto front (indices)
    frontier_by_workload: Mapping[str, Tuple[int, ...]] = field(
        default_factory=dict)

    def point(self, index):
        """The :class:`PointEval` with the given space index."""
        for point in self.points:
            if point.index == index:
                return point
        raise KeyError(f"point {index} was not evaluated")

    def frontier_points(self):
        """The suite-wide frontier as :class:`PointEval` objects."""
        return tuple(self.point(index) for index in self.frontier)

    def fingerprint(self):
        """The request fingerprint of this exploration.

        A pure function of the request identity — (space, strategy,
        seed, budgets, workloads) — so it can be recomputed from the
        fields and never needs to be stored.  The job service dedupes
        explore submissions on exactly this value.
        """
        return request_fingerprint(
            "explore", space=self.space_fingerprint, strategy=self.strategy,
            seed=self.seed, max_points=self.max_points,
            workloads=list(self.workloads), instructions=self.instructions)

    def to_dict(self):
        """JSON-ready enveloped payload; inverse of :meth:`from_dict`.

        Deterministic apart from the ``code_version`` header field (a
        hash of the simulator sources): key order is fixed here and
        nested dicts are plain data, so ``json.dumps(...,
        sort_keys=True)`` of two equal results is byte-identical.
        """
        payload = header(self.schema, self.fingerprint())
        payload.update({
            "space": self.space,
            "space_fingerprint": self.space_fingerprint,
            "strategy": self.strategy,
            "seed": self.seed,
            "max_points": self.max_points,
            "space_size": self.space_size,
            "workloads": list(self.workloads),
            "instructions": self.instructions,
            "points": [point.to_dict() for point in self.points],
            "frontier": list(self.frontier),
            "frontier_by_workload": {
                workload: list(indices)
                for workload, indices in sorted(
                    self.frontier_by_workload.items())
            },
        })
        return payload

    @classmethod
    def from_dict(cls, payload):
        check_schema(payload, "explore")
        return cls(
            schema=payload["schema"], space=payload["space"],
            space_fingerprint=payload["space_fingerprint"],
            strategy=payload["strategy"], seed=payload["seed"],
            max_points=payload["max_points"],
            space_size=payload["space_size"],
            workloads=tuple(payload["workloads"]),
            instructions=payload["instructions"],
            points=tuple(PointEval.from_dict(item)
                         for item in payload["points"]),
            frontier=tuple(payload["frontier"]),
            frontier_by_workload={
                workload: tuple(indices)
                for workload, indices in payload["frontier_by_workload"]
                .items()
            })
