"""Pareto dominance, frontiers and pruning over objective vectors.

Every function here works on plain sequences of equal-length numeric
objective vectors in **maximization** convention: callers negate
minimized objectives (the explorer encodes a point as
``(geomean_ipc, -cost_kb)``).  The algebra is small and heavily
property-tested (``tests/dse/test_pareto_properties.py``): the frontier
must match an O(n²) brute-force reference on random point sets,
dominance must be irreflexive/antisymmetric/transitive, and pruning must
never discard a frontier member.
"""

__all__ = ["dominates", "pareto_frontier", "prune_dominated"]


def dominates(a, b):
    """True iff *a* Pareto-dominates *b*: no worse everywhere, strictly
    better somewhere (maximization convention).

    Equal vectors do not dominate each other (irreflexivity), so
    duplicated points are all frontier members.
    """
    if len(a) != len(b):
        raise ValueError(f"objective arity mismatch: {len(a)} vs {len(b)}")
    better = False
    for x, y in zip(a, b):
        if x < y:
            return False
        if x > y:
            better = True
    return better


def pareto_frontier(vectors):
    """Indices of the non-dominated vectors, in ascending index order.

    Sorts lexicographically descending first: a dominator always sorts
    before anything it dominates, so each candidate only needs checking
    against the frontier built so far — O(n log n + n·f) with frontier
    size f, against the O(n²) all-pairs reference the property tests
    compare to.
    """
    vectors = list(vectors)
    order = sorted(range(len(vectors)),
                   key=lambda i: tuple(-c for c in vectors[i]))
    front = []
    for i in order:
        candidate = vectors[i]
        if not any(dominates(vectors[j], candidate) for j in front):
            front.append(i)
    return sorted(front)


def prune_dominated(vectors, keep=0, key=None):
    """Indices surviving early pruning, ascending.

    Every frontier member always survives (the invariant the property
    tests pin); additionally the best *keep* dominated vectors by *key*
    (default: objective sum) survive as secondary search parents, ties
    broken by index so the result is deterministic.
    """
    vectors = list(vectors)
    front = pareto_frontier(vectors)
    if keep <= 0:
        return front
    on_front = dict.fromkeys(front)
    dominated = [i for i in range(len(vectors)) if i not in on_front]
    score = key if key is not None else sum
    dominated.sort(key=lambda i: (-score(vectors[i]), i))
    return sorted(front + dominated[:keep])
