"""Value profiling: the paper's Fig. 1 (distribution of produced values).

Functional emulation only — no timing — so it is cheap enough to run over
the whole suite.
"""

from collections import Counter

from repro.emulator.trace import trace_program
from repro.isa.bits import fits_signed


def value_profile(workloads, instructions_each=20_000):
    """Aggregate value histogram over GPR-writing µops of the suite.

    Returns ``(counter, total)`` where *counter* maps produced 64-bit
    values to occurrence counts.
    """
    counter = Counter()
    total = 0
    for workload in workloads:
        _trace, stats = trace_program(workload.program,
                                      max_instructions=instructions_each,
                                      collect_value_histogram=True)
        counter.update(stats.value_histogram)
        total += stats.gpr_writers
    return counter, total


def top_values(counter, total, count=20):
    """The paper's Fig. 1 series: top values by dynamic frequency (%)"""
    return [(value, 100.0 * hits / total)
            for value, hits in counter.most_common(count)]


def narrow_fraction(counter, total, bits=9):
    """Fraction of produced values that fit a signed *bits*-bit integer —
    the headroom TVP's inlining targets."""
    if total == 0:
        return 0.0
    narrow = sum(hits for value, hits in counter.items()
                 if fits_signed(value, bits))
    return 100.0 * narrow / total
