"""Synthetic SPEC CPU2017-speed stand-in workloads.

The paper evaluates on SPEC2k17 speed; we cannot ship SPEC, so each kernel
here is constructed to exercise the behaviour class the paper's analysis
leans on for one (or a family of) benchmark(s) — see each kernel module's
docstring and DESIGN.md §2 for the substitution argument.
"""

from repro.workloads.base import Workload, build_workload
from repro.workloads.profile import value_profile
from repro.workloads.suite import SUITE, get_workload, suite

__all__ = [
    "SUITE",
    "Workload",
    "build_workload",
    "get_workload",
    "suite",
    "value_profile",
]
