"""The workload suite registry."""

from repro.workloads.kernels import (
    board_eval,
    climate_mix,
    compiler_cfg,
    event_queue,
    fir_filter,
    hash_loop,
    match_count,
    motion_sad,
    permute,
    sparse_graph,
    stencil5,
    stream_triad,
    wave_field,
    xml_tree,
)

_BUILDERS = [
    hash_loop.build,
    compiler_cfg.build,
    stream_triad.build,
    sparse_graph.build,
    stencil5.build,
    event_queue.build,
    xml_tree.build,
    motion_sad.build,
    board_eval.build,
    fir_filter.build,
    match_count.build,
    permute.build,
    climate_mix.build,
    wave_field.build,
]

SUITE = [builder() for builder in _BUILDERS]

# Generated (progen) kernels are first-class *named* workloads but not
# part of the default suite: the paper's tables stay pinned to the 14
# hand-written kernels, while `--workloads progen0` and exploration
# workload lists resolve the generated ones by name.
from repro.workloads.generated import GENERATED  # noqa: E402

_REGISTRY = SUITE + GENERATED
_BY_NAME = {workload.name: workload for workload in _REGISTRY}


def suite(names=None):
    """The default suite, or the named subset (in registry order).

    Without *names* this is the paper's 14-kernel suite; with *names*
    any registered workload resolves, generated kernels included.
    """
    if names is None:
        return list(SUITE)
    missing = set(names) - set(_BY_NAME)
    if missing:
        raise KeyError(f"unknown workloads: {sorted(missing)}")
    return [w for w in _REGISTRY if w.name in set(names)]


def get_workload(name):
    """One workload by name."""
    return _BY_NAME[name]
