"""exchange2-like: digit-array permutation shuffling.

exchange2 spends its life moving the digits 0..9 between small arrays:
nearly every produced value is a single decimal digit, giving the densest
narrow-value distribution in the suite (prime TVP territory) and an
L1-resident working set.
"""

from repro.workloads.base import build_workload, quad_table, random_permutation


def build():
    schedule = random_permutation(64, seed=0xE2C4)
    source = f"""
// digit shuffling through a 16-entry board
    adr   x10, digits_meta
outer:
    ldr   x1, [x10]          // board base pointer (GVP-predictable)
    adr   x2, schedule
    mov   x3, #64
step:
    ldr   x11, [x10, #8]     // digit modulus: always 0x9 (TVP-predictable)
    ldr   x12, [x10, #16]    // element size: always 0x8 (TVP-predictable)
    ldr   x4, [x2], #8       // schedule entry
    and   x5, x4, #15        // slot i
    lsr   x6, x4, #4
    and   x6, x6, #15        // slot j (0..3 of upper bits)
    madd  x13, x5, x12, x1   // &board[i] via the loaded element size:
    madd  x14, x6, x12, x1   // predicting 0x8 breaks the address chains
    ldr   x7, [x13]
    ldr   x8, [x14]
    add   x9, x7, x8
    cmp   x9, x11
    b.ls  nostep
    sub   x9, x9, x11        // keep digits in 0..9
nostep:
    str   x8, [x13]
    str   x9, [x14]
    subs  x3, x3, #1
    b.ne  step
    b     outer

.data
digits_meta: .quad board, 9, 8
board: .quad 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5
{quad_table("schedule", schedule)}
"""
    return build_workload(
        name="permute",
        spec_analog="648.exchange2_s",
        description="digit permutation shuffling (dense narrow values)",
        source=source,
    )
