"""perlbench-like: string hashing with character-class tests.

Byte loads produce narrow values; the character-class comparisons produce a
stream of 0/1 ``cset`` results (MVP food); the hash recurrence is a serial
integer chain.  Matches perlbench's branchy, integer-heavy profile.
"""

from repro.workloads.base import build_workload, random_values


def build():
    text_bytes = [v % 96 + 32 for v in random_values(512, bits=16, seed=0x9E12)]
    data_lines = ["text:"]
    for start in range(0, len(text_bytes), 16):
        chunk = ", ".join(str(b) for b in text_bytes[start:start + 16])
        data_lines.append(f"    .byte {chunk}")
    source = f"""
// perlbench-like string hash + classify.  The cursor stride and the
// buffer base live in memory (globals the compiler cannot register-
// allocate): their loads produce the constant values 0x1 and a pointer —
// MVP/TVP and GVP prediction targets on the cursor-advance chain.
    mov   x0, #0          // hash
    mov   x9, #0          // slash count
    mov   x10, #0         // digit count
    adr   x12, globals
outer:
    ldr   x1, [x12, #8]   // text base pointer (GVP-predictable)
    mov   x2, #512
scan:
    ldr   x11, [x12]      // stride global: always 0x1 (MVP-predictable)
    ldrb  w3, [x1]
    add   x1, x1, x11     // cursor chain broken by predicting 0x1
    lsl   x4, x0, #5
    sub   x4, x4, x0      // h*31
    add   x0, x4, x3      // h = h*31 + c
    cmp   x3, #47         // '/'
    cset  x5, eq
    add   x9, x9, x5
    sub   x6, x3, #48
    cmp   x6, #10
    cset  x7, cc          // is-digit
    add   x10, x10, x7
    subs  x2, x2, #1
    b.ne  scan
    and   x0, x0, #65535
    b     outer

.data
globals: .quad 1, text
{chr(10).join(data_lines)}
"""
    return build_workload(
        name="hash_loop",
        spec_analog="600.perlbench_s",
        description="string hashing + character classification (branchy INT)",
        source=source,
    )
