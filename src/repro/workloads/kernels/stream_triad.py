"""bwaves/lbm-like: FP streaming (STREAM triad a = b + s*c).

Unit-stride double loads/stores over arrays larger than the L1D: the
stride prefetcher's bread and butter, FP-pipe bound, with almost no
VP-predictable integer values — the paper's FP codes show near-zero
MVP/TVP uplift, and this kernel reproduces that.
"""

from repro.workloads.base import build_workload

_ELEMENTS = 4096  # 32KB per array


def build():
    source = f"""
// STREAM triad over {_ELEMENTS} doubles
    fmov  d0, #3.5           // scalar s
outer:
    adr   x1, array_a
    adr   x2, array_b
    adr   x3, array_c
    mov   x4, #{_ELEMENTS // 4}
triad:
    ldr   d1, [x2]
    ldr   d2, [x3]
    fmadd d3, d2, d0, d1
    str   d3, [x1]
    ldr   d4, [x2, #8]
    ldr   d5, [x3, #8]
    fmadd d6, d5, d0, d4
    str   d6, [x1, #8]
    ldr   d1, [x2, #16]
    ldr   d2, [x3, #16]
    fmadd d3, d2, d0, d1
    str   d3, [x1, #16]
    ldr   d4, [x2, #24]
    ldr   d5, [x3, #24]
    fmadd d6, d5, d0, d4
    str   d6, [x1, #24]!     // one writeback bumps the output pointer
    add   x1, x1, #8
    add   x2, x2, #32
    add   x3, x3, #32
    subs  x4, x4, #1
    b.ne  triad
    b     outer

.data
.align 64
array_a: .zero {_ELEMENTS * 8}
array_b: .zero {_ELEMENTS * 8}
array_c: .zero {_ELEMENTS * 8}
"""
    return build_workload(
        name="stream_triad",
        spec_analog="603.bwaves_s / 619.lbm_s",
        description="FP STREAM triad, prefetcher-friendly streaming",
        source=source,
    )
