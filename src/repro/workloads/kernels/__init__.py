"""One module per synthetic kernel; see :mod:`repro.workloads.suite`."""
