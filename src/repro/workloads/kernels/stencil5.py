"""roms/cactuBSSN-like: 2D 5-point FP stencil over a 64x64 grid.

Row-strided double loads (two access streams at +/- one row) exercise the
stride prefetcher at multiple strides; the FP adds form short chains.
"""

from repro.workloads.base import build_workload

_DIM = 64
_ROW_BYTES = _DIM * 8


def build():
    source = f"""
// 5-point stencil: out = 0.25 * (N + S + E + W)
    fmov  d0, #0.25
outer:
    adr   x1, grid_in
    adr   x2, grid_out
    add   x1, x1, #{_ROW_BYTES + 8}   // start at [1][1]
    add   x2, x2, #{_ROW_BYTES + 8}
    mov   x3, #{_DIM - 2}             // rows
rows:
    mov   x4, #{_DIM - 2}             // cols
cols:
    ldr   d1, [x1, #-8]               // W
    ldr   d2, [x1, #8]                // E
    ldr   d3, [x1, #-{_ROW_BYTES}]    // N
    ldr   d4, [x1, #{_ROW_BYTES}]     // S
    fadd  d5, d1, d2
    fadd  d6, d3, d4
    fadd  d7, d5, d6
    fmul  d8, d7, d0
    str   d8, [x2], #8
    add   x1, x1, #8
    subs  x4, x4, #1
    b.ne  cols
    add   x1, x1, #16                 // skip halo
    add   x2, x2, #16
    subs  x3, x3, #1
    b.ne  rows
    b     outer

.data
.align 64
grid_in:  .zero {_DIM * _ROW_BYTES}
grid_out: .zero {_DIM * _ROW_BYTES}
"""
    return build_workload(
        name="stencil5",
        spec_analog="654.roms_s / 607.cactuBSSN_s",
        description="2D 5-point FP stencil with multi-stride access",
        source=source,
    )
