"""omnetpp-like: binary-heap sift-down over random keys.

Compare-and-swap ladders with data-dependent branches and csel-based
min-selection: the discrete-event-simulator profile (pointer-light here,
but the same unpredictable compare outcomes and 0/1 cset values).
"""

from repro.workloads.base import build_workload, quad_table, random_values

_HEAP = 255


def build():
    import heapq

    keys = random_values(_HEAP + 1, bits=20, seed=0x0E55)
    # 1-indexed binary min-heap: heapify so the kernel's sift-downs keep
    # the heap property invariant (checked by the semantics tests).
    body = keys[1:]
    heapq.heapify(body)
    ordered = [keys[0]] + [0] * _HEAP
    # heapq is 0-indexed; rebuild a valid 1-indexed layout level by level.
    for position, value in enumerate(body, start=1):
        ordered[position] = value
    keys = ordered
    source = f"""
// heap sift-down from the root, repeatedly re-seeded
    mov   x9, #1             // rotating new-key seed
    adr   x10, heap_meta
outer:
    ldr   x1, [x10]          // heap base pointer (GVP-predictable)
    // pseudo-random new root key from the seed
    lsl   x2, x9, #13
    eor   x9, x9, x2
    lsr   x2, x9, #7
    eor   x9, x9, x2
    and   x0, x9, #1048575
    str   x0, [x1, #8]       // heap[1] = new key
    mov   x3, #1             // i = 1
sift:
    ldr   x11, [x10, #8]     // heap arity selector: always 0x1 (MVP)
    ldr   x12, [x10, #16]    // key record size: always 0x8 (TVP)
    lsl   x4, x3, x11        // left child (chain uses the loaded 0x1)
    cmp   x4, #{_HEAP}
    b.hi  done
    add   x5, x4, #1         // right child
    madd  x13, x4, x12, x1   // child addresses via the loaded record size
    madd  x14, x5, x12, x1
    ldr   x6, [x13]
    ldr   x7, [x14]
    cmp   x6, x7
    csel  x8, x6, x7, ls     // smaller child key
    csel  x4, x4, x5, ls     // smaller child index
    ldr   x6, [x1, x3, lsl #3]
    cmp   x8, x6
    b.hs  done               // heap property holds
    str   x6, [x1, x4, lsl #3]
    str   x8, [x1, x3, lsl #3]
    mov   x3, x4
    b     sift
done:
    b     outer

.data
heap_meta: .quad heap, 1, 8
{quad_table("heap", keys)}
"""
    return build_workload(
        name="event_queue",
        spec_analog="620.omnetpp_s",
        description="binary-heap sift-down with unpredictable compares",
        source=source,
    )
