"""gcc-like: IR-node interpretation through an indirect jump table.

A stream of (opcode, operand) records dispatched through ``br`` exercises
the indirect target cache like a compiler's switch-heavy IR walkers; the
per-op handlers are short ALU bursts with many small constants.
"""

from repro.workloads.base import build_workload, quad_table, random_values

_N_NODES = 256


def build():
    opcodes = [v % 4 for v in random_values(_N_NODES, bits=8, seed=0x6CC1)]
    operands = random_values(_N_NODES, bits=10, seed=0x6CC2)
    nodes = []
    for opcode, operand in zip(opcodes, operands):
        nodes.extend([opcode, operand])
    source = f"""
// gcc-like opcode dispatch over IR nodes
    mov   x0, #0            // accumulator
    mov   x10, #0           // node index
    adr   x11, ctx
outer:
    adr   x1, nodes
    mov   x3, #{_N_NODES}
walk:
    ldr   x2, [x11]           // handler-table base (GVP-predictable)
    ldp   x4, x5, [x1], #16   // opcode, operand
    ldr   x6, [x2, x4, lsl #3]
    br    x6
op_add:
    add   x0, x0, x5
    b     next
op_xor:
    eor   x0, x0, x5
    b     next
op_shift:
    and   x7, x5, #7
    lsl   x8, x0, #1
    orr   x0, x8, x7
    b     next
op_test:
    tst   x5, #1
    cset  x9, ne
    add   x0, x0, x9
next:
    subs  x3, x3, #1
    b.ne  walk
    add   x10, x10, #1
    b     outer

.data
ctx:      .quad handlers
handlers: .quad op_add, op_xor, op_shift, op_test
{quad_table("nodes", nodes)}
"""
    return build_workload(
        name="compiler_cfg",
        spec_analog="602.gcc_s",
        description="IR-node opcode dispatch via indirect branches",
        source=source,
    )
