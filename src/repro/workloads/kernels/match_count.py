"""xz-like: LZ match-length scanning.

Byte-compare loops with early exits at unpredictable positions; the
match/mismatch ``cset`` results and short match lengths are narrow values,
and the exit branch is the classic hard-to-predict compression branch.
"""

from repro.workloads.base import build_workload, random_values

_WINDOW = 1024


def build():
    window = [v & 0xFF for v in random_values(_WINDOW, bits=8, seed=0x717A)]
    # A shifted copy with sprinkled corruption: matches of varying length.
    copy = list(window)
    noise = random_values(_WINDOW, bits=8, seed=0x717B)
    for i, n in enumerate(noise):
        if n % 11 == 0:
            copy[i] = (copy[i] + 1) & 0xFF
    def byte_block(label, data):
        lines = [f"{label}:"]
        for start in range(0, len(data), 16):
            chunk = ", ".join(str(b) for b in data[start:start + 16])
            lines.append(f"    .byte {chunk}")
        return "\n".join(lines)
    source = f"""
// xz-like match-length scan between two windows
    mov   x0, #0             // total matched bytes
    mov   x9, #0             // start cursor
    adr   x10, lz_globals
outer:
    ldr   x1, [x10, #8]      // window A base (GVP-predictable pointer)
    ldr   x2, [x10, #16]     // window B base (GVP-predictable pointer)
    and   x9, x9, #{_WINDOW // 2 - 1}
    add   x1, x1, x9
    add   x2, x2, x9
    mov   x3, #0             // match length
scan:
    ldr   x11, [x10]         // match step global: always 0x1 (MVP)
    ldrb  w4, [x1, x3]
    ldrb  w5, [x2, x3]
    cmp   w4, w5
    b.ne  mismatch
    add   x3, x3, x11        // length chain broken by predicting 0x1
    cmp   x3, #64
    b.cc  scan
mismatch:
    add   x0, x0, x3
    cmp   x3, #4
    cset  x6, hs             // "long enough match" flag (0/1)
    add   x9, x9, #7
    add   x9, x9, x6
    b     outer

.data
lz_globals: .quad 1, window_a, window_b
{byte_block("window_a", window)}
{byte_block("window_b", copy)}
"""
    return build_workload(
        name="match_count",
        spec_analog="657.xz_s",
        description="LZ match scanning with unpredictable early exits",
        source=source,
    )
