"""wrf/cam4/pop2-like: FP physics with conditional masking.

Mixed INT/FP: a column of cells is updated with FP arithmetic, but each
cell first passes a threshold test whose 0/1 mask feeds integer
bookkeeping — the pattern behind cam4's modest MVP uplift in the paper
(predictable mask values on the integer side of an FP code).
"""

from repro.workloads.base import build_workload

_CELLS = 512


def build():
    # All cells start above the 0.5 threshold (and only grow), so the
    # per-cell mask is a stable 0x1 after decay: the FP code's integer
    # side is MVP-predictable, like cam4's bookkeeping.
    doubles = "\n".join(
        f"    .double {0.6 + (i % 7) * 0.05}" for i in range(_CELLS))
    source = f"""
// climate column update with threshold masks
    fmov  d0, #0.5           // threshold
    fmov  d1, #0.98          // decay
    mov   x9, #0             // saturated-cell count
    mov   x12, #0            // mask-transition counter
    adr   x10, col_meta
outer:
    ldr   x1, [x10]          // column base (GVP-predictable pointer)
    ldr   x11, [x10, #8]     // mask stride: always 0x1 (MVP-predictable)
    mov   x2, #{_CELLS}
cell:
    ldr   d2, [x1]
    fmul  d3, d2, d1         // decay
    fcmp  d3, d0
    cset  x4, gt             // mask: saturates to 0x1 after warmup
    tbz   x2, #3, nomask     // sample bookkeeping every 8th cell
    sub   x5, x4, x11        // mask delta vs previous: 0x0 in steady state
    add   x9, x9, x4         // integer bookkeeping through the mask
    add   x12, x12, x5       // transition counter (stays 0)
nomask:
    fadd  d4, d3, d0
    str   d4, [x1], #8
    subs  x2, x2, #1
    b.ne  cell
    b     outer

.data
col_meta: .quad column, 1
.align 64
column:
{doubles}
"""
    return build_workload(
        name="climate_mix",
        spec_analog="621.wrf_s / 627.cam4_s / 628.pop2_s",
        description="FP column physics with 0/1 threshold masks",
        source=source,
    )
