"""deepsjeng/leela-like: bitboard evaluation.

64-bit mask manipulation, bit-serial popcount (the ``and #1`` results are
a dense stream of 0/1 values — MVP's natural prey), table-driven scoring
and data-dependent early exits.
"""

from repro.workloads.base import build_workload, quad_table, random_values


def build():
    boards = random_values(128, bits=64, seed=0xB0A2D)
    weights = [v % 32 for v in random_values(64, bits=8, seed=0xB0A2E)]
    source = f"""
// bitboard popcount-and-score over 128 positions
    adr   x12, eval_globals
outer:
    adr   x1, boards
    mov   x3, #128
    mov   x0, #0
board:
    ldr   x2, [x12]          // weight-table base (GVP-predictable)
    ldr   x11, [x12, #8]     // side-to-move flag: always 0x1 (MVP)
    ldr   x4, [x1], #8
    and   x5, x4, #4095      // low zone only: bounded popcount loop
    mov   x6, #0             // bit index
bits:
    and   x7, x5, #1         // 0/1 stream
    cbz   x7, skipw
    ldr   x8, [x2, x6, lsl #3]
    madd  x0, x8, x11, x0    // weight * side + acc (chain uses both loads)
skipw:
    add   x6, x6, #1
    lsr   x5, x5, #1
    cbnz  x5, bits
    eor   x9, x4, x4, lsl #1 // neighbour-pair mask
    and   x9, x9, #255
    add   x0, x0, x9
    subs  x3, x3, #1
    b.ne  board
    b     outer

.data
eval_globals: .quad weights, 1
{quad_table("boards", boards)}
{quad_table("weights", weights)}
"""
    return build_workload(
        name="board_eval",
        spec_analog="631.deepsjeng_s / 641.leela_s",
        description="bitboard popcount scoring with 0/1-rich dataflow",
        source=source,
    )
