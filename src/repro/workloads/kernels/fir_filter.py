"""nab/imagick-like: FP inner products (8-tap FIR).

Serial fmadd chains bound by FP-MAC latency; integer side is only loop
control.  Like the paper's FP codes, VP has nearly nothing to predict
(only GPR producers are eligible).
"""

from repro.workloads.base import build_workload

_SAMPLES = 1024


def build():
    taps = [0.25, -0.125, 0.5, 0.0625, -0.25, 0.125, -0.5, 0.03125]
    tap_lines = "\n".join(f"    .double {t}" for t in taps)
    source = f"""
// 8-tap FIR over {_SAMPLES} samples
outer:
    adr   x1, signal
    adr   x2, taps
    adr   x3, output
    mov   x4, #{_SAMPLES - 8}
    ldr   d8, [x2]
    ldr   d9, [x2, #8]
    ldr   d10, [x2, #16]
    ldr   d11, [x2, #24]
    ldr   d12, [x2, #32]
    ldr   d13, [x2, #40]
    ldr   d14, [x2, #48]
    ldr   d15, [x2, #56]
sample:
    ldr   d0, [x1]
    ldr   d1, [x1, #8]
    fmul  d16, d0, d8
    fmadd d16, d1, d9, d16
    ldr   d2, [x1, #16]
    ldr   d3, [x1, #24]
    fmadd d16, d2, d10, d16
    fmadd d16, d3, d11, d16
    ldr   d4, [x1, #32]
    ldr   d5, [x1, #40]
    fmadd d16, d4, d12, d16
    fmadd d16, d5, d13, d16
    ldr   d6, [x1, #48]
    ldr   d7, [x1, #56]
    fmadd d16, d6, d14, d16
    fmadd d16, d7, d15, d16
    str   d16, [x3], #8
    add   x1, x1, #8
    subs  x4, x4, #1
    b.ne  sample
    b     outer

.data
taps:
{tap_lines}
.align 64
signal: .zero {_SAMPLES * 8}
output: .zero {_SAMPLES * 8}
"""
    return build_workload(
        name="fir_filter",
        spec_analog="644.nab_s / 638.imagick_s",
        description="8-tap FP FIR, FP-MAC latency bound",
        source=source,
    )
