"""x264-like: sum-of-absolute-differences over pixel blocks.

Byte loads, subtract, conditional negate (abs), accumulate — very regular
control flow, narrow values throughout, moderate ILP.  Many block pairs
are identical, so the SAD accumulator sees long runs of produced zeros
(which is exactly why x264 benefits from 0-value prediction idioms).
"""

from repro.workloads.base import build_workload, random_values

_BLOCKS = 16
_BLOCK_BYTES = 64


def build():
    ref = [v & 0xFF for v in random_values(_BLOCKS * _BLOCK_BYTES, bits=8,
                                           seed=0xC264)]
    # Half the candidate blocks equal the reference (zero SAD runs).
    cand = list(ref)
    noise = random_values(len(cand), bits=8, seed=0xC265)
    for i, n in enumerate(noise):
        if (i // _BLOCK_BYTES) % 2 == 1:
            cand[i] = (cand[i] + n) & 0xFF
    def byte_block(label, data):
        lines = [f"{label}:"]
        for start in range(0, len(data), 16):
            chunk = ", ".join(str(b) for b in data[start:start + 16])
            lines.append(f"    .byte {chunk}")
        return "\n".join(lines)
    source = f"""
// x264-like SAD over {_BLOCKS} blocks of {_BLOCK_BYTES} bytes
    adr   x11, sad_globals
outer:
    adr   x1, ref_pixels
    adr   x2, cand_pixels
    mov   x3, #{_BLOCKS}
    mov   x10, #0            // best (min) SAD so far
block:
    mov   x0, #0             // SAD accumulator
    mov   x4, #{_BLOCK_BYTES}
pixel:
    ldr   x9, [x11]          // pixel stride global: always 0x1 (MVP)
    ldrb  w5, [x1]
    ldrb  w6, [x2]
    add   x1, x1, x9         // cursor chains broken by predicting 0x1
    add   x2, x2, x9
    subs  w7, w5, w6
    csneg w7, w7, w7, pl     // absolute difference
    add   x0, x0, x7
    subs  x4, x4, #1
    b.ne  pixel
    cmp   x0, x10
    csel  x10, x0, x10, ls
    subs  x3, x3, #1
    b.ne  block
    b     outer

.data
sad_globals: .quad 1
{byte_block("ref_pixels", ref)}
{byte_block("cand_pixels", cand)}
"""
    return build_workload(
        name="motion_sad",
        spec_analog="625.x264_s",
        description="block SAD with abs-diff ladders and zero runs",
        source=source,
    )
