"""fotonik3d-like: wave-equation field sweep over a large array.

Two read streams and one write stream at fixed offsets, L1-overflowing
footprint, almost branchless — the streaming FP profile where prefetchers
do all the work and value prediction finds nothing (the paper's FP codes
with ~0% uplift).
"""

from repro.workloads.base import build_workload

_POINTS = 8192  # 64KB per field


def build():
    source = f"""
// 1D wave update: next = 2*cur - prev + c * (laplacian)
    fmov  d0, #0.0625        // c
    fmov  d1, #2.0
outer:
    adr   x1, field_cur
    adr   x2, field_prev
    adr   x3, field_next
    mov   x4, #{_POINTS - 2}
    add   x1, x1, #8
    add   x2, x2, #8
    add   x3, x3, #8
point:
    ldr   d2, [x1]           // cur[i]
    ldr   d3, [x1, #-8]      // cur[i-1]
    ldr   d4, [x1, #8]       // cur[i+1]
    ldr   d5, [x2]           // prev[i]
    fadd  d6, d3, d4
    fmul  d7, d2, d1
    fsub  d8, d7, d5
    fmadd d9, d6, d0, d8
    str   d9, [x3]
    add   x1, x1, #8
    add   x2, x2, #8
    add   x3, x3, #8
    subs  x4, x4, #1
    b.ne  point
    b     outer

.data
.align 64
field_cur:  .zero {_POINTS * 8}
field_prev: .zero {_POINTS * 8}
field_next: .zero {_POINTS * 8}
"""
    return build_workload(
        name="wave_field",
        spec_analog="649.fotonik3d_s",
        description="1D wave-equation sweep, stream-bound FP",
        source=source,
    )
