"""xalancbmk-like: the paper's GVP outlier, in miniature.

Section 6.1 of the paper traces xalancbmk's +52.65% GVP speedup to "three
predictable yet dependent loads within a loop, that are used to retrieve
the base address of a structure through multiple indirections", feeding a
fourth load that fetches a small varying element.  Pointer values need
more than 9 bits, so MVP and TVP cannot capture them.

Here: three chained pointer loads whose values are identical every
iteration (so GVP's VTAGE predicts them), a varying data load off the
resolved base, and a data-dependent branch whose resolution sits behind
the whole chain — value-predicting the pointers collapses the chain and
resolves the branch early.
"""

from repro.workloads.base import build_workload

_TABLE = 256


def build():
    data_bytes = []
    state = 0x1234_5678
    for _ in range(_TABLE):
        state = (state * 1103515245 + 12345) & 0x7FFF_FFFF
        data_bytes.append((state >> 13) & 0xFF)  # high bits: decorrelated
    byte_lines = []
    for start in range(0, _TABLE, 16):
        chunk = ", ".join(str(b) for b in data_bytes[start:start + 16])
        byte_lines.append(f"    .byte {chunk}")
    source = f"""
// xalancbmk-like triple indirection to a stable base + varying element
    mov   x0, #0             // match count
    mov   x7, #1             // xorshift cursor state
loop:
    adr   x2, head
    ldr   x3, [x2]           // indirection 1 (stable pointer)
    ldr   x4, [x3]           // indirection 2 (stable pointer)
    ldr   x5, [x4]           // indirection 3 (stable pointer)
    ldr   x5, [x5]           // indirection 4 (stable base address)
    lsl   x9, x7, #13        // xorshift step: pseudo-random element index
    eor   x7, x7, x9
    lsr   x9, x7, #7
    eor   x7, x7, x9
    and   x8, x7, #{_TABLE - 1}
    ldrb  w6, [x5, x8]       // varying element
    tbz   w6, #0, even       // data-dependent: ~50% mispredicted
    add   x0, x0, #1
even:
    add   x0, x0, #0
    b     loop

.data
head:   .quad inner1
inner1: .quad inner2
inner2: .quad inner3
inner3: .quad table
table:
{chr(10).join(byte_lines)}
"""
    return build_workload(
        name="xml_tree",
        spec_analog="623.xalancbmk_s",
        description="stable dependent-load chain + data-dependent branch "
                    "(GVP-only outlier)",
        source=source,
    )
