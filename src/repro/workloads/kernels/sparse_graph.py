"""mcf-like: pointer chasing across a large, randomized node ring.

Nodes are spread over ~2MB (beyond the 1MB L2), visited in a random
permutation order, so every hop is a serial L3-latency load — the
low-IPC, memory-latency-bound profile of 605.mcf_s.
"""

from repro.workloads.base import build_workload, random_permutation

_N_NODES = 4096
_STRIDE = 512  # bytes between node slots: 4096 * 512 = 2MB footprint


def build():
    order = random_permutation(_N_NODES, seed=0x3CF5)
    # next[order[i]] = order[i+1]: one big cycle in permuted order.
    lines = ["nodes:"]
    next_of = [0] * _N_NODES
    for position in range(_N_NODES):
        next_of[order[position]] = order[(position + 1) % _N_NODES]
    for index in range(_N_NODES):
        target = f"nodes + {next_of[index] * _STRIDE}"
        # .quad supports plain ints only; precompute absolute addresses via
        # the data base: nodes label resolves first, so store offsets and
        # rebuild pointers at startup instead.
        lines.append(f"    .quad {next_of[index] * _STRIDE}")
        lines.append(f"    .zero {_STRIDE - 8}")
        del target
    source = f"""
// mcf-like pointer chase: node -> offset of next node
    adr   x1, nodes          // base
    mov   x2, #0             // current offset
    mov   x0, #0
chase:
    add   x3, x1, x2
    ldr   x2, [x3]           // next offset (serial, L3-latency)
    ldr   x4, [x3, #8]       // payload (zero)
    add   x0, x0, x4
    add   x0, x0, #1
    b     chase

.data
.align 64
{chr(10).join(lines)}
"""
    return build_workload(
        name="sparse_graph",
        spec_analog="605.mcf_s",
        description="randomized pointer chase over a 2MB ring (L3-bound)",
        source=source,
        default_instructions=12_000,
    )
