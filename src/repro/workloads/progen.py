"""Structured random-program generator (fuzzing + generated workloads).

Single source of truth: the differential fuzz harness imports
:func:`generate_source` from here (via its historical
``tests.differential.progen`` spelling), and
:mod:`repro.workloads.generated` wraps fixed seeds of the same stream as
first-class named workloads.

Programs are *structured* random: straight-line blocks of random ALU /
memory / conditional-select instructions inside counted loops (backward
``b.ne``) with occasional forward skip branches.  Control flow is always
reducible and counters always reach zero, so every generated program
terminates.  All memory traffic stays inside a private scratch buffer.

Register discipline (so random writes can never corrupt control flow):

* ``x28`` — scratch-buffer base, written once in the prologue;
* ``x9``  — the active loop counter;
* ``x10`` — masked index register for register-offset addressing;
* ``x0``–``x7`` (and their ``w`` views) — free-for-all data pool.

Determinism: all choices come from one :class:`~repro.util.rng.XorShift64`
stream, so ``program(seed, index)`` is a pure function — a failure report
of ``(seed, index)`` reproduces the exact program.
"""

from repro.util.rng import XorShift64

BUF_BYTES = 512                 # scratch buffer; quad offsets 0..504

_POOL = tuple(f"x{i}" for i in range(8))
_WPOOL = tuple(f"w{i}" for i in range(8))
_ALU3 = ("add", "sub", "and", "orr", "eor", "bic", "lsl", "lsr", "asr")
_ALU3_FLAGS = ("adds", "subs", "ands")
_CONDS = ("eq", "ne", "lt", "ge", "gt", "le", "hi", "ls")


class _Gen:
    def __init__(self, rng):
        self.rng = rng
        self.lines = []
        self.label_counter = 0

    def pick(self, seq):
        return seq[self.rng.next() % len(seq)]

    def imm(self, bound):
        return self.rng.next() % bound

    def fresh_label(self, stem):
        self.label_counter += 1
        return f"{stem}_{self.label_counter}"

    # -- single random body instructions ------------------------------------------
    def alu3(self):
        wide = self.rng.next() % 4 != 0          # mostly 64-bit
        pool = _POOL if wide else _WPOOL
        op = self.pick(_ALU3 + _ALU3_FLAGS)
        self.lines.append(f"    {op} {self.pick(pool)}, {self.pick(pool)}, "
                          f"{self.pick(pool)}")

    def alu_imm(self):
        op = self.pick(("add", "sub", "and", "orr", "eor", "lsl", "lsr"))
        shift_ops = ("lsl", "lsr")
        bound = 64 if op in shift_ops else 4096
        self.lines.append(f"    {op} {self.pick(_POOL)}, {self.pick(_POOL)}, "
                          f"#{self.imm(bound)}")

    def mul_div(self):
        op = self.pick(("mul", "madd", "sdiv", "udiv"))
        if op == "madd":
            self.lines.append(f"    madd {self.pick(_POOL)}, "
                              f"{self.pick(_POOL)}, {self.pick(_POOL)}, "
                              f"{self.pick(_POOL)}")
        else:
            self.lines.append(f"    {op} {self.pick(_POOL)}, "
                              f"{self.pick(_POOL)}, {self.pick(_POOL)}")

    def unary(self):
        op = self.pick(("rbit", "clz", "uxtb", "uxth", "sxtb", "sxth"))
        self.lines.append(f"    {op} {self.pick(_POOL)}, {self.pick(_POOL)}")

    def move(self):
        kind = self.rng.next() % 3
        if kind == 0:
            self.lines.append(f"    mov {self.pick(_POOL)}, "
                              f"{self.pick(_POOL)}")
        elif kind == 1:
            self.lines.append(f"    movz {self.pick(_POOL)}, "
                              f"#{self.imm(1 << 16)}")
        else:
            self.lines.append(f"    movk {self.pick(_POOL)}, "
                              f"#{self.imm(1 << 16)}, lsl #16")

    def load(self):
        if self.rng.next() % 3 == 0:             # register-offset quad
            self.lines.append(f"    and x10, {self.pick(_POOL)}, #63")
            self.lines.append(f"    ldr {self.pick(_POOL)}, "
                              f"[x28, x10, lsl #3]")
        else:
            op = self.pick(("ldr", "ldr", "ldrb", "ldrh", "ldrsw"))
            offset = (self.imm(BUF_BYTES // 8) * 8 if op == "ldr"
                      else self.imm(BUF_BYTES - 8))
            self.lines.append(f"    {op} {self.pick(_POOL)}, "
                              f"[x28, #{offset}]")

    def store(self):
        if self.rng.next() % 3 == 0:
            self.lines.append(f"    and x10, {self.pick(_POOL)}, #63")
            self.lines.append(f"    str {self.pick(_POOL)}, "
                              f"[x28, x10, lsl #3]")
        else:
            op = self.pick(("str", "str", "strb", "strh"))
            offset = (self.imm(BUF_BYTES // 8) * 8 if op == "str"
                      else self.imm(BUF_BYTES - 8))
            self.lines.append(f"    {op} {self.pick(_POOL)}, "
                              f"[x28, #{offset}]")

    def select(self):
        self.lines.append(f"    cmp {self.pick(_POOL)}, #{self.imm(64)}")
        if self.rng.next() % 2:
            op = self.pick(("csel", "csinc", "csneg"))
            self.lines.append(f"    {op} {self.pick(_POOL)}, "
                              f"{self.pick(_POOL)}, {self.pick(_POOL)}, "
                              f"{self.pick(_CONDS)}")
        else:
            self.lines.append(f"    cset {self.pick(_POOL)}, "
                              f"{self.pick(_CONDS)}")

    def forward_skip(self):
        """A short, always-joined forward branch (never loops)."""
        label = self.fresh_label("skip")
        if self.rng.next() % 2:
            self.lines.append(f"    tbz {self.pick(_POOL)}, "
                              f"#{self.imm(8)}, {label}")
        else:
            self.lines.append(f"    cmp {self.pick(_POOL)}, #{self.imm(32)}")
            self.lines.append(f"    b.{self.pick(_CONDS)} {label}")
        for _ in range(1 + self.rng.next() % 2):
            self.alu_imm()
        self.lines.append(f"{label}:")

    def body_instruction(self):
        roll = self.rng.next() % 100
        if roll < 28:
            self.alu3()
        elif roll < 44:
            self.alu_imm()
        elif roll < 56:
            self.load()
        elif roll < 66:
            self.store()
        elif roll < 74:
            self.select()
        elif roll < 80:
            self.mul_div()
        elif roll < 85:
            self.unary()
        elif roll < 93:
            self.move()
        else:
            self.forward_skip()

    # -- whole-program assembly -----------------------------------------------------
    def program(self, loop_forever=False):
        lines = self.lines
        lines.append("    .data")
        lines.append(f"buf: .zero {BUF_BYTES}")
        lines.append("    .text")
        lines.append("    adr x28, buf")
        for reg in _POOL:
            lines.append(f"    movz {reg}, #{self.imm(1 << 16)}")
        # The outer-loop label draws nothing from the RNG, so the
        # looping and terminating renderings of one seed share the
        # exact same body — the differential pin relies on this.
        if loop_forever:
            lines.append("forever:")
        for block in range(1 + self.rng.next() % 3):
            loop = self.fresh_label("loop")
            iters = 4 + self.imm(12)
            lines.append(f"    movz x9, #{iters}")
            lines.append(f"{loop}:")
            for _ in range(6 + self.rng.next() % 18):
                self.body_instruction()
            lines.append("    subs x9, x9, #1")
            lines.append(f"    b.ne {loop}")
        if loop_forever:
            # Loop counters re-init (movz x9) at each block head, so
            # re-entry is clean; the data pool just keeps drifting.
            lines.append("    b forever")
        else:
            lines.append("    hlt")
        return "\n".join(lines) + "\n"


def generate_source(seed, index, loop_forever=False):
    """Assembly source for fuzz program *index* of stream *seed*.

    With ``loop_forever=True`` the program's blocks repeat under an
    outer unconditional back-branch instead of halting — the workload
    contract (the instruction budget is the only terminator).
    """
    # Mix the index into the seed so each program draws from an
    # independent, reproducible stream.
    rng = XorShift64((seed ^ (0x9E37_79B9 * (index + 1))) or 1)
    return _Gen(rng).program(loop_forever=loop_forever)
