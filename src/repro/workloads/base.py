"""Workload container and helpers shared by the kernel generators."""

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.util.rng import XorShift64


@dataclass
class Workload:
    """One runnable benchmark kernel."""

    name: str
    spec_analog: str               # which SPEC2k17 behaviour it stands in for
    description: str
    source: str                    # assembly text
    default_instructions: int = 30_000
    _program: Optional[Program] = field(default=None, repr=False)

    @property
    def program(self):
        """Lazily assembled program (cached)."""
        if self._program is None:
            self._program = assemble(self.source)
        return self._program


def build_workload(name, spec_analog, description, source,
                   default_instructions=30_000):
    """Constructor wrapper so kernels read declaratively."""
    return Workload(name=name, spec_analog=spec_analog,
                    description=description, source=source,
                    default_instructions=default_instructions)


def quad_table(label, values, per_line=8):
    """Emit a ``label: .quad ...`` data block for a list of values."""
    lines = [f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[start:start + per_line])
        lines.append(f"    .quad {chunk}")
    return "\n".join(lines)


def random_values(count, bits=16, seed=0xDA7A_0001):
    """Deterministic pseudo-random unsigned values for table data."""
    rng = XorShift64(seed)
    mask = (1 << bits) - 1
    return [rng.next() & mask for _ in range(count)]


def random_permutation(count, seed=0xDA7A_0002):
    """Deterministic pseudo-random permutation of range(count)."""
    rng = XorShift64(seed)
    values = list(range(count))
    for i in range(count - 1, 0, -1):
        j = rng.next() % (i + 1)
        values[i], values[j] = values[j], values[i]
    return values
