"""Seeded progen kernels as first-class named workloads.

Six fixed (seed, index) draws of the structured random-program
generator (:mod:`repro.workloads.progen`), rendered in looping form so
they satisfy the workload contract (the instruction budget is the only
terminator).  They are *not* part of the default 14-kernel suite — the
paper's tables stay pinned — but resolve by name everywhere
(``--workloads progen3``, ``api.simulate("progen0")``, exploration
workload lists), and ``tests/differential`` pins each one against the
functional emulator so the generator cannot drift under them.
"""

from repro.workloads.base import build_workload
from repro.workloads.progen import generate_source

__all__ = ["GENERATED", "GENERATED_COUNT", "GENERATED_SEED",
           "generated_workload"]

#: The stream the named kernels draw from — the differential fuzz
#: harness's default seed, so every named kernel is also fuzz program
#: (GENERATED_SEED, index) and failures cross-reference directly.
GENERATED_SEED = 0xD1FF5EED
GENERATED_COUNT = 6


def generated_workload(index, seed=GENERATED_SEED):
    """Build the named workload for generator program *index*."""
    source = generate_source(seed, index, loop_forever=True)
    return build_workload(
        name=f"progen{index}",
        spec_analog="generated",
        description=(f"structured random program {index} of stream "
                     f"{seed:#x} (progen, looping form)"),
        source=source,
        default_instructions=20_000)


GENERATED = [generated_workload(index) for index in range(GENERATED_COUNT)]
